open Simkit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_config ?(n_c = 2) ?(n_s = 2) ?(pattern : Failure.pattern option) ?(trace = false) mem =
  let pattern =
    match pattern with Some p -> p | None -> Failure.failure_free n_s
  in
  {
    Runtime.n_c;
    n_s;
    memory = mem;
    pattern;
    history = History.trivial;
    record_trace = trace;
  }

(* --- Pid --- *)

let test_pid () =
  check_bool "c is c" true (Pid.is_c (Pid.c 0));
  check_bool "s is s" true (Pid.is_s (Pid.s 3));
  check_int "index" 3 (Pid.index (Pid.s 3));
  check_bool "order C before S" true (Pid.compare (Pid.c 9) (Pid.s 0) < 0);
  Alcotest.(check string) "pp 1-based" "p1" (Pid.to_string (Pid.c 0));
  Alcotest.(check string) "pp q" "q2" (Pid.to_string (Pid.s 1));
  check_int "all count" 5 (List.length (Pid.all ~n_c:2 ~n_s:3))

(* --- Failure --- *)

let test_failure_basic () =
  let f = Failure.pattern ~n_s:3 [ (1, 5) ] in
  check_bool "not crashed before" false (Failure.crashed f ~time:4 1);
  check_bool "crashed at" true (Failure.crashed f ~time:5 1);
  check_bool "crashed after" true (Failure.crashed f ~time:100 1);
  check_bool "others fine" false (Failure.crashed f ~time:100 0);
  Alcotest.(check (list int)) "faulty" [ 1 ] (Failure.faulty f);
  Alcotest.(check (list int)) "correct" [ 0; 2 ] (Failure.correct f);
  check_int "num faulty" 1 (Failure.num_faulty f)

let test_failure_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "all faulty" (fun () ->
      Failure.pattern ~n_s:2 [ (0, 1); (1, 2) ]);
  expect_invalid "repeated" (fun () -> Failure.pattern ~n_s:3 [ (0, 1); (0, 2) ]);
  expect_invalid "negative time" (fun () -> Failure.pattern ~n_s:3 [ (0, -1) ]);
  expect_invalid "out of range" (fun () -> Failure.pattern ~n_s:3 [ (5, 0) ])

let test_env_et () =
  let env = Failure.e_t ~n_s:4 ~t:2 in
  check_bool "member ok" true (env.member (Failure.pattern ~n_s:4 [ (0, 1); (2, 3) ]));
  check_bool "too many" false
    (env.member (Failure.pattern ~n_s:4 [ (0, 1); (2, 3); (3, 0) ]));
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    let p = env.sample rng ~horizon:100 in
    check_bool "sampled member" true (env.member p)
  done

let test_env_enumerate () =
  let env = Failure.e_t ~n_s:3 ~t:1 in
  let pats = Failure.enumerate env ~horizon:10 ~times:[ 0; 5 ] in
  (* failure-free (1) + 3 choices of single faulty × 2 times = 7 *)
  check_int "enumeration size" 7 (List.length pats);
  List.iter (fun p -> check_bool "enumerated member" true (env.member p)) pats

(* --- Memory --- *)

let test_memory () =
  let mem = Memory.create () in
  let rs = Memory.alloc mem 3 in
  check_int "alloc size" 3 (Array.length rs);
  check_bool "init unit" true (Value.is_unit (Memory.read mem rs.(0)));
  Memory.write mem rs.(1) (Value.int 7);
  check_int "write/read" 7 (Value.to_int (Memory.read mem rs.(1)));
  let rs2 = Memory.alloc mem ~init:(Value.int 9) 100 in
  check_int "grow" 9 (Value.to_int (Memory.read mem rs2.(99)));
  check_int "used" 103 (Memory.size mem);
  Alcotest.check_raises "oob" (Invalid_argument "Memory: register out of range")
    (fun () -> ignore (Memory.read mem 1000))

(* --- Runtime basics --- *)

let test_runtime_write_read () =
  let mem = Memory.create () in
  let r = Memory.alloc1 mem () in
  let seen = ref None in
  let c_code i () =
    if i = 0 then Runtime.Op.write r (Value.int 42)
    else seen := Some (Runtime.Op.read r)
  in
  let rt = Runtime.create (mk_config mem) ~c_code ~s_code:(fun _ () -> ()) in
  (* p1 writes on its first step *)
  Runtime.step rt (Pid.c 0);
  check_int "value visible in memory" 42 (Value.to_int (Memory.read mem r));
  Runtime.step rt (Pid.c 1);
  (match !seen with
  | Some v -> check_int "p2 read it" 42 (Value.to_int v)
  | None -> Alcotest.fail "p2 did not read");
  check_bool "p1 done" true (Runtime.status rt (Pid.c 0) = Runtime.Done);
  Runtime.destroy rt

let test_runtime_step_counts_time () =
  let mem = Memory.create () in
  let r = Memory.alloc1 mem () in
  let c_code _ () =
    for i = 1 to 5 do
      Runtime.Op.write r (Value.int i)
    done
  in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  for _ = 1 to 3 do
    Runtime.step rt (Pid.c 0)
  done;
  check_int "time advanced" 3 (Runtime.time rt);
  check_int "3 writes landed" 3 (Value.to_int (Memory.read mem r));
  check_int "steps taken" 3 (Runtime.steps_taken rt (Pid.c 0));
  for _ = 1 to 10 do
    Runtime.step rt (Pid.c 0)
  done;
  check_int "only 5 writes total" 5 (Value.to_int (Memory.read mem r));
  check_bool "done after code returns" true
    (Runtime.status rt (Pid.c 0) = Runtime.Done);
  check_int "null steps counted as scheds" 13 (Runtime.sched_count rt (Pid.c 0));
  Runtime.destroy rt

let test_runtime_decide () =
  let mem = Memory.create () in
  let c_code _ () =
    Runtime.Op.decide (Value.int 99);
    (* unreachable: decide terminates the process *)
    Runtime.Op.write (Memory.alloc1 mem ()) (Value.int 0)
  in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  check_bool "not decided yet" true (Runtime.decision rt 0 = None);
  Runtime.step rt (Pid.c 0);
  (match Runtime.decision rt 0 with
  | Some v -> check_int "decided 99" 99 (Value.to_int v)
  | None -> Alcotest.fail "no decision");
  check_bool "all done" true (Runtime.all_c_done rt);
  check_bool "decide time" true (Runtime.decide_time rt 0 = Some 0);
  (* further steps are null *)
  Runtime.step rt (Pid.c 0);
  check_int "no extra steps" 1 (Runtime.steps_taken rt (Pid.c 0));
  Runtime.destroy rt

let test_runtime_crash_semantics () =
  let mem = Memory.create () in
  let r = Memory.alloc1 mem () in
  let pattern = Failure.pattern ~n_s:2 [ (0, 2) ] in
  let s_code i () =
    if i = 0 then
      let rec loop n = Runtime.Op.write r (Value.int n); loop (n + 1) in
      loop 1
  in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:2 ~pattern mem)
      ~c_code:(fun _ () -> ())
      ~s_code
  in
  Runtime.step rt (Pid.s 0) (* time 0: alive, writes 1 *);
  Runtime.step rt (Pid.s 0) (* time 1: alive, writes 2 *);
  Runtime.step rt (Pid.s 0) (* time 2: crashed -> null *);
  Runtime.step rt (Pid.s 0) (* time 3: crashed -> null *);
  check_int "writes stop at crash" 2 (Value.to_int (Memory.read mem r));
  check_int "steps taken" 2 (Runtime.steps_taken rt (Pid.s 0));
  check_int "scheds include null" 4 (Runtime.sched_count rt (Pid.s 0));
  Runtime.destroy rt

let test_runtime_query () =
  let mem = Memory.create () in
  let history =
    History.make ~name:"time-echo" (fun q time -> Value.pair (Value.int q) (Value.int time))
  in
  let got = ref [] in
  let s_code i () =
    if i = 0 then
      for _ = 1 to 3 do
        got := Runtime.Op.query () :: !got
      done
  in
  let cfg = { (mk_config ~n_c:1 ~n_s:2 mem) with Runtime.history } in
  let rt = Runtime.create cfg ~c_code:(fun _ () -> ()) ~s_code in
  Runtime.step rt (Pid.s 0);
  Runtime.step rt (Pid.s 1);
  Runtime.step rt (Pid.s 0);
  Runtime.step rt (Pid.s 0);
  let vals = List.rev_map (fun v -> Value.to_pair v) !got in
  (match vals with
  | [ (q1, t1); (q2, t2); (q3, t3) ] ->
    check_int "q id" 0 (Value.to_int q1);
    check_int "q id" 0 (Value.to_int q2);
    check_int "q id" 0 (Value.to_int q3);
    check_int "t1" 0 (Value.to_int t1);
    check_int "t2" 2 (Value.to_int t2);
    check_int "t3" 3 (Value.to_int t3)
  | _ -> Alcotest.failf "expected 3 queries, got %d" (List.length vals));
  Runtime.destroy rt

let test_runtime_c_query_forbidden () =
  let mem = Memory.create () in
  let c_code _ () = ignore (Runtime.Op.query ()) in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  (match Runtime.step rt (Pid.c 0) with
  | exception Runtime.Forbidden_query pid ->
    check_bool "right pid" true (Pid.equal pid (Pid.c 0))
  | () -> Alcotest.fail "expected Forbidden_query");
  Runtime.destroy rt

let test_runtime_snapshot_primitive () =
  let mem = Memory.create () in
  let rs = Memory.alloc mem 3 in
  Array.iteri (fun i r -> Memory.write mem r (Value.int (i * 10))) rs;
  let got = ref [||] in
  let c_code _ () = got := Runtime.Op.snapshot rs in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  Runtime.step rt (Pid.c 0);
  Alcotest.(check (array int)) "snapshot" [| 0; 10; 20 |]
    (Array.map Value.to_int !got);
  Runtime.destroy rt

let test_runtime_determinism () =
  (* Same codes + same schedule => identical trace of memory states. *)
  let run () =
    let mem = Memory.create () in
    let rs = Memory.alloc mem 4 in
    let c_code i () =
      Runtime.Op.write rs.(i) (Value.int (i + 1));
      let v = Runtime.Op.read rs.((i + 1) mod 2) in
      Runtime.Op.decide (Value.pair (Value.int i) v)
    in
    let rt =
      Runtime.create (mk_config ~n_c:2 ~n_s:2 mem) ~c_code
        ~s_code:(fun _ () -> ())
    in
    let sched = [ Pid.c 0; Pid.c 1; Pid.c 1; Pid.c 0; Pid.c 0; Pid.c 1 ] in
    List.iter (Runtime.step rt) sched;
    let out = Runtime.decisions rt in
    Runtime.destroy rt;
    Array.map (Option.map Value.to_string) out
  in
  let a = run () and b = run () in
  check_bool "identical outcomes" true (a = b)

let test_runtime_yield () =
  let mem = Memory.create () in
  let c_code _ () =
    Runtime.Op.yield ();
    Runtime.Op.decide (Value.int 1)
  in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  Runtime.step rt (Pid.c 0);
  check_bool "yield is not a decision" true (Runtime.decision rt 0 = None);
  Runtime.step rt (Pid.c 0);
  check_bool "decided after yield" true (Runtime.decision rt 0 <> None);
  Runtime.destroy rt

let test_participating_requires_op () =
  (* A scheduled process whose code performs no operation takes a null step
     and must NOT count as participating (first_step is set only when an
     operation executes). *)
  let mem = Memory.create () in
  let c_code i () = if i = 0 then () else Runtime.Op.decide (Value.int i) in
  let rt =
    Runtime.create (mk_config ~n_c:2 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  Runtime.step rt (Pid.c 0);
  check_bool "no-op code does not participate" false (Runtime.participating rt 0);
  check_bool "no first-step time" true (Runtime.first_step_time rt 0 = None);
  Alcotest.(check (list int)) "not an undecided participant" []
    (Runtime.undecided_participants rt);
  Runtime.step rt (Pid.c 1);
  check_bool "op-performing code participates" true (Runtime.participating rt 1);
  check_int "steps_total counts every step call" 2 (Runtime.steps_total rt);
  Runtime.destroy rt

let test_digest_convergence () =
  (* Interleavings that commute (ops on distinct registers) digest equal;
     genuinely different outcomes digest differently. *)
  let build () =
    let mem = Memory.create () in
    let rs = Memory.alloc mem 2 in
    let c_code i () =
      Runtime.Op.write rs.(i) (Value.int (10 + i));
      Runtime.Op.decide (Value.int i)
    in
    Runtime.create (mk_config ~n_c:2 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let after sched =
    let rt = build () in
    List.iter (Runtime.step rt) sched;
    let d = Runtime.digest rt in
    Runtime.destroy rt;
    d
  in
  Alcotest.(check string) "commuting writes converge"
    (after [ Pid.c 0; Pid.c 1 ])
    (after [ Pid.c 1; Pid.c 0 ]);
  check_bool "different progress differs" true
    (after [ Pid.c 0; Pid.c 0 ] <> after [ Pid.c 0; Pid.c 1 ]);
  (* memory introspection used by the digest *)
  let mem = Memory.create () in
  let rs = Memory.alloc mem 2 in
  Memory.write mem rs.(1) (Value.int 3);
  let h0 = Memory.hash mem in
  Alcotest.(check int) "contents length" 2 (Array.length (Memory.contents mem));
  Memory.write mem rs.(1) (Value.int 4);
  check_bool "hash tracks contents" true (Memory.hash mem <> h0)

let test_trace_recording () =
  let mem = Memory.create () in
  let r = Memory.alloc1 mem () in
  let c_code _ () =
    Runtime.Op.write r (Value.int 5);
    ignore (Runtime.Op.read r);
    Runtime.Op.decide (Value.int 5)
  in
  let cfg = { (mk_config ~n_c:1 ~n_s:1 mem) with Runtime.record_trace = true } in
  let rt = Runtime.create cfg ~c_code ~s_code:(fun _ () -> ()) in
  for _ = 1 to 4 do
    Runtime.step rt (Pid.c 0)
  done;
  let entries = Trace.entries (Runtime.trace rt) in
  check_int "4 entries" 4 (List.length entries);
  (match List.map (fun e -> e.Trace.event) entries with
  | [ Trace.Write _; Trace.Read _; Trace.Decide _; Trace.Null ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence");
  Runtime.destroy rt

(* --- Schedule --- *)

let counter_codes mem n =
  (* Each C-process increments its own register forever. *)
  let rs = Memory.alloc mem n in
  let c_code i () =
    let rec loop v =
      Runtime.Op.write rs.(i) (Value.int v);
      loop (v + 1)
    in
    loop 1
  in
  (rs, c_code)

let test_round_robin_fair () =
  let mem = Memory.create () in
  let _, c_code = counter_codes mem 3 in
  let rt =
    Runtime.create (mk_config ~n_c:3 ~n_s:2 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let policy = Schedule.round_robin ~n_c:3 ~n_s:2 in
  let outcome = Schedule.run rt policy ~budget:50 in
  check_int "budget hit" 50 outcome.Schedule.total_steps;
  check_bool "exhausted" true outcome.Schedule.exhausted;
  check_int "each scheduled 10x" 10 (Runtime.sched_count rt (Pid.c 0));
  check_int "each scheduled 10x" 10 (Runtime.sched_count rt (Pid.s 1));
  Runtime.destroy rt

let test_shuffled_rounds_fair () =
  let mem = Memory.create () in
  let _, c_code = counter_codes mem 2 in
  let rt =
    Runtime.create (mk_config ~n_c:2 ~n_s:3 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let rng = Random.State.make [| 7 |] in
  let policy = Schedule.shuffled_rounds ~n_c:2 ~n_s:3 rng in
  let _ = Schedule.run rt policy ~budget:100 in
  (* 100 steps = 20 full rounds of 5: every process scheduled exactly 20x *)
  List.iter
    (fun pid -> check_int "fair rounds" 20 (Runtime.sched_count rt pid))
    (Pid.all ~n_c:2 ~n_s:3);
  Runtime.destroy rt

let test_explicit_schedule_stops () =
  let mem = Memory.create () in
  let _, c_code = counter_codes mem 1 in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let policy = Schedule.explicit [ Pid.c 0; Pid.c 0 ] in
  let outcome = Schedule.run rt policy ~budget:100 in
  check_int "ran 2" 2 outcome.Schedule.total_steps;
  check_bool "not exhausted" false outcome.Schedule.exhausted;
  Runtime.destroy rt

let test_run_stops_on_decisions () =
  let mem = Memory.create () in
  let c_code i () = Runtime.Op.decide (Value.int i) in
  let rt =
    Runtime.create (mk_config ~n_c:3 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let policy = Schedule.round_robin ~n_c:3 ~n_s:1 in
  let outcome = Schedule.run rt policy ~budget:1000 in
  check_bool "all decided" true outcome.Schedule.all_decided;
  check_bool "stopped early" true (outcome.Schedule.total_steps <= 4);
  Runtime.destroy rt

let test_starve_policy () =
  let mem = Memory.create () in
  let _, c_code = counter_codes mem 2 in
  let rt =
    Runtime.create (mk_config ~n_c:2 ~n_s:2 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let rng = Random.State.make [| 3 |] in
  let policy =
    Schedule.starve [ Pid.c 0 ] ~until:40
      (Schedule.shuffled_rounds ~n_c:2 ~n_s:2 rng)
  in
  let _ = Schedule.run rt policy ~budget:80 in
  (* p1 must not have been scheduled before time 40 *)
  (match Runtime.first_step_time rt 0 with
  | Some t -> check_bool "starved until 40" true (t >= 40)
  | None -> Alcotest.fail "p1 never ran at all");
  Runtime.destroy rt

let test_k_concurrent_controller () =
  let mem = Memory.create () in
  (* every C-process spins a bit, then decides *)
  let rs = Memory.alloc mem 4 in
  let c_code i () =
    for v = 1 to 3 do
      Runtime.Op.write rs.(i) (Value.int v)
    done;
    Runtime.Op.decide (Value.int i)
  in
  let rt =
    Runtime.create (mk_config ~n_c:4 ~n_s:2 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let rng = Random.State.make [| 11 |] in
  let policy = Schedule.k_concurrent ~k:2 ~arrival:[ 0; 1; 2; 3 ] ~n_s:2 rng in
  let outcome = Schedule.run rt policy ~budget:500 in
  check_bool "all decided" true outcome.Schedule.all_decided;
  check_bool "run was 2-concurrent" true (Checker.is_k_concurrent rt ~k:2);
  check_bool "not 1-concurrent (2 admitted at once)" false
    (Checker.max_concurrency rt <= 1);
  Runtime.destroy rt

let test_solo_policy () =
  let mem = Memory.create () in
  let c_code _ () = Runtime.Op.decide (Value.int 0) in
  let rt =
    Runtime.create (mk_config ~n_c:3 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let outcome =
    Schedule.run rt (Schedule.c_solo 1) ~budget:10
      ~stop_when:(fun rt -> Runtime.decision rt 1 <> None)
  in
  check_bool "p2 decided" true (Runtime.decision rt 1 <> None);
  check_bool "others never ran" true
    ((not (Runtime.participating rt 0)) && not (Runtime.participating rt 2));
  check_bool "solo is 1-concurrent" true (Checker.is_k_concurrent rt ~k:1);
  ignore outcome;
  Runtime.destroy rt

(* --- Checker --- *)

let test_checker_wait_free () =
  let mem = Memory.create () in
  let c_code i () =
    if i = 0 then Runtime.Op.decide (Value.int 0)
    else
      let r = Memory.alloc1 mem () in
      let rec loop () =
        ignore (Runtime.Op.read r);
        loop ()
      in
      loop ()
  in
  let rt =
    Runtime.create (mk_config ~n_c:2 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let _ =
    Schedule.run rt (Schedule.round_robin ~n_c:2 ~n_s:1) ~budget:90
  in
  check_bool "p1 fine" true (Runtime.decision rt 0 <> None);
  check_bool "wait-freedom violated by p2" false
    (Checker.wait_free_ok rt ~min_scheds:20);
  Alcotest.(check (list int)) "witness is p2" [ 1 ]
    (Checker.undecided_with_scheds rt ~min_scheds:20);
  Runtime.destroy rt

let test_checker_concurrency_sequential () =
  let mem = Memory.create () in
  let c_code i () = Runtime.Op.decide (Value.int i) in
  let rt =
    Runtime.create (mk_config ~n_c:3 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  (* strictly sequential: p1 runs & decides, then p2, then p3 *)
  List.iter (Runtime.step rt) [ Pid.c 0; Pid.c 1; Pid.c 2 ];
  check_int "sequential run is 1-concurrent" 1 (Checker.max_concurrency rt);
  Runtime.destroy rt

let test_checker_concurrency_parallel () =
  let mem = Memory.create () in
  let r = Memory.alloc1 mem () in
  let c_code i () =
    ignore (Runtime.Op.read r);
    Runtime.Op.decide (Value.int i)
  in
  let rt =
    Runtime.create (mk_config ~n_c:3 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  (* all three start before any decides *)
  List.iter (Runtime.step rt)
    [ Pid.c 0; Pid.c 1; Pid.c 2; Pid.c 0; Pid.c 1; Pid.c 2 ];
  check_int "3-concurrent" 3 (Checker.max_concurrency rt);
  Runtime.destroy rt

let test_checker_fairness_measure () =
  let mem = Memory.create () in
  let pattern = Failure.pattern ~n_s:3 [ (2, 0) ] in
  let rt =
    Runtime.create
      (mk_config ~n_c:1 ~n_s:3 ~pattern mem)
      ~c_code:(fun _ () -> ())
      ~s_code:(fun _ () -> ())
  in
  Runtime.step rt (Pid.s 0);
  Runtime.step rt (Pid.s 0);
  Runtime.step rt (Pid.s 1);
  check_int "min correct scheds" 1 (Checker.min_correct_s_scheds rt);
  Runtime.destroy rt

(* --- Snapshot (honest construction) --- *)

let test_snapshot_sequential () =
  let mem = Memory.create () in
  let h = Snapshot.create mem ~n:3 in
  let result = ref [||] in
  let c_code i () =
    if i = 0 then begin
      Snapshot.update h 0 (Value.int 10);
      result := Snapshot.scan h
    end
  in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let _ = Schedule.run rt (Schedule.c_solo 0) ~budget:200 in
  check_int "slots" 3 (Snapshot.n_slots h);
  check_bool "scan sees own update" true
    (Value.equal !result.(0) (Value.int 10));
  check_bool "others bottom" true (Value.is_unit !result.(1));
  Runtime.destroy rt

let test_snapshot_interleaved_atomic () =
  (* Two writers + one scanner under many random schedules: every scan must
     be a prefix-consistent atomic view — for single-writer counters that
     increment their own slot, any scan must read values that were
     simultaneously current. We check monotone consistency: repeated scans
     are pointwise non-decreasing. *)
  let trials = 25 in
  let violations = ref 0 in
  for seed = 1 to trials do
    let mem = Memory.create () in
    let h = Snapshot.create mem ~n:3 in
    let scans = ref [] in
    let c_code i () =
      if i < 2 then
        for v = 1 to 5 do
          Snapshot.update h i (Value.int v)
        done
      else
        for _ = 1 to 5 do
          scans := Snapshot.scan h :: !scans
        done
    in
    let rt =
      Runtime.create (mk_config ~n_c:3 ~n_s:1 mem) ~c_code
        ~s_code:(fun _ () -> ())
    in
    let rng = Random.State.make [| seed |] in
    let _ =
      Schedule.run rt (Schedule.shuffled_rounds ~n_c:3 ~n_s:1 rng) ~budget:5000
    in
    let as_int v = if Value.is_unit v then 0 else Value.to_int v in
    let ordered = List.rev !scans in
    let rec check_mono = function
      | a :: (b :: _ as rest) ->
        for j = 0 to 1 do
          if as_int a.(j) > as_int b.(j) then incr violations
        done;
        check_mono rest
      | _ -> ()
    in
    check_mono ordered;
    Runtime.destroy rt
  done;
  check_int "no monotonicity violations" 0 !violations

let test_snapshot_borrowed_view () =
  (* Force the borrow path: a scanner interleaved with a fast writer that
     updates many times; the scanner must still terminate (wait-freedom). *)
  let mem = Memory.create () in
  let h = Snapshot.create mem ~n:2 in
  let scan_done = ref false in
  let c_code i () =
    if i = 0 then
      for v = 1 to 50 do
        Snapshot.update h 0 (Value.int v)
      done
    else begin
      ignore (Snapshot.scan h);
      scan_done := true;
      Runtime.Op.decide (Value.unit)
    end
  in
  let rt =
    Runtime.create (mk_config ~n_c:2 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  (* adversarial: give the scanner one step per 6 writer steps *)
  let sched = ref [] in
  for _ = 1 to 400 do
    sched := Pid.c 0 :: Pid.c 0 :: Pid.c 0 :: Pid.c 0 :: Pid.c 0 :: Pid.c 0 :: Pid.c 1 :: !sched
  done;
  let _ =
    Schedule.run rt (Schedule.explicit !sched) ~budget:3000
      ~stop_when:(fun _ -> !scan_done)
  in
  check_bool "scan terminated despite concurrent writer" true !scan_done;
  Runtime.destroy rt

let test_collect_vs_scan () =
  let mem = Memory.create () in
  let h = Snapshot.create mem ~n:2 in
  let out = ref Value.unit in
  let c_code _ () =
    Snapshot.update h 0 (Value.str "a");
    Snapshot.update h 1 (Value.str "b");
    let c = Snapshot.collect h in
    out := Value.pair c.(0) c.(1);
    Runtime.Op.decide Value.unit
  in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  let _ = Schedule.run rt (Schedule.c_solo 0) ~budget:500 in
  let a, b = Value.to_pair !out in
  Alcotest.(check string) "collect a" "a" (Value.to_str a);
  Alcotest.(check string) "collect b" "b" (Value.to_str b);
  Runtime.destroy rt

(* --- Nested runtimes (the Figure-1 prerequisite) --- *)

let test_nested_runtime () =
  (* An outer process runs a complete inner simulation as local computation
     between two of its own steps. *)
  let mem = Memory.create () in
  let outer_result = Memory.alloc1 mem () in
  let c_code _ () =
    (* inner simulation: 2 C-processes exchanging a value *)
    let imem = Memory.create () in
    let ir = Memory.alloc1 imem () in
    let inner_c i () =
      if i = 0 then Runtime.Op.write ir (Value.int 123)
      else Runtime.Op.decide (Runtime.Op.read ir)
    in
    let irt =
      Runtime.create
        {
          Runtime.n_c = 2;
          n_s = 1;
          memory = imem;
          pattern = Failure.failure_free 1;
          history = History.trivial;
          record_trace = false;
        }
        ~c_code:inner_c
        ~s_code:(fun _ () -> ())
    in
    Runtime.step irt (Pid.c 0);
    Runtime.step irt (Pid.c 1);
    Runtime.step irt (Pid.c 1);
    let inner_decision =
      match Runtime.decision irt 1 with Some v -> v | None -> Value.int (-1)
    in
    Runtime.destroy irt;
    (* back in the outer world: one outer step publishing the result *)
    Runtime.Op.write outer_result inner_decision;
    Runtime.Op.decide inner_decision
  in
  let rt =
    Runtime.create (mk_config ~n_c:1 ~n_s:1 mem) ~c_code
      ~s_code:(fun _ () -> ())
  in
  Runtime.step rt (Pid.c 0);
  Runtime.step rt (Pid.c 0);
  check_int "inner run result escaped to outer memory" 123
    (Value.to_int (Memory.read mem outer_result));
  (match Runtime.decision rt 0 with
  | Some v -> check_int "outer decided inner value" 123 (Value.to_int v)
  | None -> Alcotest.fail "outer did not decide");
  Runtime.destroy rt

let suite =
  [
    Alcotest.test_case "pid" `Quick test_pid;
    Alcotest.test_case "failure pattern basics" `Quick test_failure_basic;
    Alcotest.test_case "failure validation" `Quick test_failure_validation;
    Alcotest.test_case "environment E_t" `Quick test_env_et;
    Alcotest.test_case "environment enumeration" `Quick test_env_enumerate;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "runtime write/read" `Quick test_runtime_write_read;
    Alcotest.test_case "runtime steps and time" `Quick test_runtime_step_counts_time;
    Alcotest.test_case "runtime decide" `Quick test_runtime_decide;
    Alcotest.test_case "runtime crash semantics" `Quick test_runtime_crash_semantics;
    Alcotest.test_case "runtime FD query" `Quick test_runtime_query;
    Alcotest.test_case "C-process query forbidden" `Quick test_runtime_c_query_forbidden;
    Alcotest.test_case "snapshot primitive" `Quick test_runtime_snapshot_primitive;
    Alcotest.test_case "determinism" `Quick test_runtime_determinism;
    Alcotest.test_case "yield" `Quick test_runtime_yield;
    Alcotest.test_case "participation requires an operation" `Quick
      test_participating_requires_op;
    Alcotest.test_case "state digest convergence" `Quick test_digest_convergence;
    Alcotest.test_case "trace recording" `Quick test_trace_recording;
    Alcotest.test_case "round robin fair" `Quick test_round_robin_fair;
    Alcotest.test_case "shuffled rounds fair" `Quick test_shuffled_rounds_fair;
    Alcotest.test_case "explicit schedule stops" `Quick test_explicit_schedule_stops;
    Alcotest.test_case "run stops on decisions" `Quick test_run_stops_on_decisions;
    Alcotest.test_case "starve policy" `Quick test_starve_policy;
    Alcotest.test_case "k-concurrent controller" `Quick test_k_concurrent_controller;
    Alcotest.test_case "solo policy" `Quick test_solo_policy;
    Alcotest.test_case "checker wait-freedom" `Quick test_checker_wait_free;
    Alcotest.test_case "checker: sequential is 1-concurrent" `Quick
      test_checker_concurrency_sequential;
    Alcotest.test_case "checker: parallel is 3-concurrent" `Quick
      test_checker_concurrency_parallel;
    Alcotest.test_case "checker fairness measure" `Quick test_checker_fairness_measure;
    Alcotest.test_case "snapshot sequential" `Quick test_snapshot_sequential;
    Alcotest.test_case "snapshot atomic under interleaving" `Quick
      test_snapshot_interleaved_atomic;
    Alcotest.test_case "snapshot wait-free under fast writer" `Quick
      test_snapshot_borrowed_view;
    Alcotest.test_case "collect vs scan" `Quick test_collect_vs_scan;
    Alcotest.test_case "nested runtimes" `Quick test_nested_runtime;
  ]
