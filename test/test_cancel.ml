(* Cooperative cancellation of the long-running engines — the contract the
   service layer's deadlines rely on: a cancelled run never reports a
   verdict (it raises), and re-running uncancelled reproduces the
   deterministic seed result exactly. *)

open Simkit
open Efd

let check_bool = Alcotest.(check bool)

(* a hook that flips to true at its [n]-th poll and stays true *)
let cancel_after n =
  let polls = ref 0 in
  fun () ->
    incr polls;
    !polls >= n

let sa_build () =
  let mem = Memory.create () in
  let sa = Bglib.Safe_agreement.create mem ~n:2 in
  let c_code i () =
    Bglib.Safe_agreement.propose sa ~me:i (Value.int (100 + i));
    let rec resolve () =
      match Bglib.Safe_agreement.try_resolve sa with
      | Some v -> Runtime.Op.decide v
      | None -> resolve ()
    in
    resolve ()
  in
  Runtime.create
    {
      Runtime.n_c = 2;
      n_s = 1;
      memory = mem;
      pattern = Failure.failure_free 1;
      history = History.trivial;
      record_trace = false;
    }
    ~c_code
    ~s_code:(fun _ () -> ())

let sa_prop rt =
  match (Runtime.decision rt 0, Runtime.decision rt 1) with
  | Some a, Some b -> Value.equal a b
  | _ -> true

let exhaustive_verdict ?cancel ~depth () =
  Exhaustive.run ?cancel ~build:sa_build
    ~pids:[ Pid.c 0; Pid.c 1; Pid.s 0 ]
    ~depth ~prop:sa_prop ()
  |> fst

let verdict_eq a b =
  match (a, b) with
  | Exhaustive.Ok n, Exhaustive.Ok m -> n = m
  | Exhaustive.Counterexample c, Exhaustive.Counterexample c' -> c = c'
  | _ -> false

(* Cancelled => Exhaustive.Cancelled raised, no verdict escapes; not
   cancelled early enough => the full deterministic verdict. Either way a
   subsequent uncancelled run reproduces the baseline. *)
let prop_exhaustive_cancel =
  QCheck.Test.make ~name:"cancelled Exhaustive.run reports no verdict"
    ~count:25
    QCheck.(pair (int_range 5 8) (int_range 1 5_000))
    (fun (depth, fire_at) ->
      let baseline = exhaustive_verdict ~depth () in
      let observed =
        match exhaustive_verdict ~cancel:(cancel_after fire_at) ~depth () with
        | v -> `Verdict v
        | exception Exhaustive.Cancelled -> `Cancelled
      in
      let rerun = exhaustive_verdict ~depth () in
      (match observed with
      | `Cancelled -> true
      | `Verdict v -> verdict_eq v baseline)
      && verdict_eq rerun baseline)

let fuzz_fingerprint (r : Adversary.fuzz_result) =
  ( r.Adversary.f_trials,
    r.Adversary.f_witnesses,
    Option.map (fun w -> w.Adversary.w_seed) r.Adversary.f_witness,
    r.Adversary.f_trial )

let prop_fuzz_cancel =
  QCheck.Test.make ~name:"cancelled Adversary.fuzz reports no result"
    ~count:15
    QCheck.(pair (int_range 1 1_000) (int_range 1 200))
    (fun (seed, fire_at) ->
      let target = Adversary.strong_renaming_target ~n:4 ~j:3 in
      let go ?cancel () =
        Adversary.fuzz_target ?cancel ~seed ~budget:40 target ()
      in
      let baseline = fuzz_fingerprint (go ()) in
      let observed =
        match go ~cancel:(cancel_after fire_at) () with
        | r -> `Result (fuzz_fingerprint r)
        | exception Adversary.Cancelled -> `Cancelled
      in
      let rerun = fuzz_fingerprint (go ()) in
      (match observed with
      | `Cancelled -> true
      | `Result r -> r = baseline)
      && rerun = baseline)

(* the solve path: Run.execute polls its hook once per scheduling step *)
let solve_report ?cancel () =
  let task = Tasklib.Set_agreement.consensus ~n:3 () in
  let algo = Ksa.consensus () in
  let fd = Fdlib.Leader_fds.vector_omega_k ~k:1 () in
  let pattern = Failure.failure_free 3 in
  let input = Tasklib.Task.sample_input task (Random.State.make [| 7 |]) in
  Run.execute ?cancel ~task ~algo ~fd ~pattern ~input ~seed:7 ()

let solve_fingerprint r = Obs.Json.to_string (Run.report_json r)

let prop_run_cancel =
  QCheck.Test.make ~name:"cancelled Run.execute reports nothing" ~count:25
    QCheck.(int_range 1 2_000)
    (fun fire_at ->
      let baseline = solve_fingerprint (solve_report ()) in
      let observed =
        match solve_report ~cancel:(cancel_after fire_at) () with
        | r -> `Report (solve_fingerprint r)
        | exception Run.Cancelled -> `Cancelled
      in
      let rerun = solve_fingerprint (solve_report ()) in
      (match observed with
      | `Cancelled -> true
      | `Report r -> r = baseline)
      && rerun = baseline)

(* the hook is genuinely consulted: an immediate cancel always raises *)
let test_immediate_cancel () =
  check_bool "exhaustive immediate" true
    (match exhaustive_verdict ~cancel:(fun () -> true) ~depth:8 () with
    | _ -> false
    | exception Exhaustive.Cancelled -> true);
  check_bool "solve immediate" true
    (match solve_report ~cancel:(fun () -> true) () with
    | _ -> false
    | exception Run.Cancelled -> true);
  check_bool "fuzz immediate" true
    (match
       Adversary.fuzz_target
         ~cancel:(fun () -> true)
         ~seed:1 ~budget:50
         (Adversary.consensus_reduction_target ~n:3)
         ()
     with
    | _ -> false
    | exception Adversary.Cancelled -> true)

(* parallel runs honour cancellation too (worker domains poll the hook) *)
let test_parallel_cancel () =
  check_bool "exhaustive domains=2" true
    (match
       Exhaustive.run ~domains:2
         ~cancel:(fun () -> true)
         ~build:sa_build
         ~pids:[ Pid.c 0; Pid.c 1; Pid.s 0 ]
         ~depth:8 ~prop:sa_prop ()
     with
    | _ -> false
    | exception Exhaustive.Cancelled -> true);
  check_bool "fuzz domains=2" true
    (match
       Adversary.fuzz_target ~domains:2
         ~cancel:(fun () -> true)
         ~seed:1 ~budget:50
         (Adversary.strong_renaming_target ~n:4 ~j:3)
         ()
     with
    | _ -> false
    | exception Adversary.Cancelled -> true)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_exhaustive_cancel;
    QCheck_alcotest.to_alcotest prop_fuzz_cancel;
    QCheck_alcotest.to_alcotest prop_run_cancel;
    Alcotest.test_case "immediate cancel raises" `Quick test_immediate_cancel;
    Alcotest.test_case "parallel engines honour cancel" `Quick
      test_parallel_cancel;
  ]
