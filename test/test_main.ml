let () =
  Alcotest.run "wfa"
    [
      ("value", Test_value.suite);
      ("simkit", Test_simkit.suite);
      ("fdlib", Test_fdlib.suite);
      ("tasklib", Test_tasklib.suite);
      ("bglib", Test_bglib.suite);
      ("sm-engine", Test_sm_engine.suite);
      ("efd-basic", Test_efd_basic.suite);
      ("efd-renaming", Test_efd_renaming.suite);
      ("efd-thm9", Test_efd_thm9.suite);
      ("efd-puzzle", Test_efd_puzzle.suite);
      ("efd-extraction", Test_efd_extraction.suite);
      ("efd-extras", Test_efd_extras.suite);
      ("efd-substrates", Test_efd_substrates.suite);
      ("closing", Test_closing.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("reduction", Test_reduction.suite);
      ("obs", Test_obs.suite);
      ("fuzz", Test_fuzz.suite);
      ("properties", Test_properties.suite);
      ("cancel", Test_cancel.suite);
      ("codec", Test_codec.suite);
      ("svc", Test_svc.suite);
      ("scenario", Test_scenario.suite);
      ("dist", Test_dist.suite);
      ("ckpt", Test_ckpt.suite);
    ]
