(* The checkpoint durability battery (DESIGN.md §8):
   - qcheck: [Store.load ∘ Store.save = id] over arbitrary records, in
     both payload codecs — the record survives the store byte-exactly;
   - torn writes: the newest generation truncated at EVERY byte offset
     must roll back to the previous generation, never raise;
   - corruption: a flipped bit anywhere demotes the generation the same
     way. *)

open Simkit
module J = Obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wfa-ckpt-%d-%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let with_store ?codec ?keep f =
  let dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      match Ckpt.Store.create ?codec ?keep dir with
      | Error msg -> Alcotest.failf "create %s: %s" dir msg
      | Ok store -> f store)

(* ------------------------------------------------------------ generators *)

let pid_gen =
  QCheck.Gen.(
    map2 (fun is_c i -> if is_c then Pid.c i else Pid.s i) bool (int_bound 3))

let verdict_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Exhaustive.Ok n) (int_bound 1_000_000));
        ( 1,
          map
            (fun ps -> Exhaustive.Counterexample ps)
            (list_size (int_range 1 8) pid_gen) );
      ])

let stats_gen =
  QCheck.Gen.(
    map
      (fun ((nodes, steps, replays, builds), (memo, sleep, orbits, wall)) ->
        {
          Exhaustive.nodes;
          steps_executed = steps;
          replays;
          runtimes_built = builds;
          memo_hits = memo;
          sleep_pruned = sleep;
          orbits_collapsed = orbits;
          wall_s = wall;
        })
      (pair
         (quad (int_bound 1_000_000) (int_bound 1_000_000)
            (int_bound 1_000_000) (int_bound 1_000_000))
         (quad (int_bound 1_000_000) (int_bound 1_000_000)
            (int_bound 1_000_000)
            (* finite, exactly-representable through the JSON printer *)
            (map (fun f -> f /. 1024.) (float_bound_inclusive 1e6)))))

let config_gen =
  QCheck.Gen.(
    map
      (fun (scenario, n_s, depth, reduce) ->
        {
          Ckpt.Record.cf_scenario =
            (if scenario then "safe-agreement" else "race-false");
          cf_n_s = n_s;
          cf_depth = depth;
          cf_reduce = reduce;
          cf_split_depth = max 1 (min 3 (depth - 1));
        })
      (quad bool (int_range 1 4) (int_range 2 12) bool))

let record_gen =
  QCheck.Gen.(
    config_gen >>= fun config ->
    int_range 0 40 >>= fun total ->
    (if total = 0 then return []
     else
       list_size (int_bound (min total 20))
         (map2
            (fun id (verdict, stats) ->
              { Ckpt.Record.dj_id = id; dj_verdict = verdict; dj_stats = stats })
            (int_bound (total - 1))
            (pair verdict_gen stats_gen)))
    >>= fun done_ -> return (Ckpt.Record.make ~config ~total ~done_))

let record_arb =
  QCheck.make record_gen ~print:(fun r -> J.to_string (Ckpt.Record.json r))

(* ------------------------------------------------------------ round-trip *)

let roundtrip_prop codec r =
  with_store ~codec (fun store ->
      (match Ckpt.Store.save store (Ckpt.Record.json r) with
      | Error msg -> Alcotest.failf "save: %s" msg
      | Ok _ -> ());
      match Ckpt.Store.load store with
      | None -> Alcotest.fail "load: no generation after save"
      | Some (_, value) -> (
        match Ckpt.Record.of_json value with
        | Error msg -> Alcotest.failf "of_json: %s" msg
        | Ok r' -> Ckpt.Record.equal r r'))

let roundtrip_test codec name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name record_arb (roundtrip_prop codec))

(* ------------------------------------------------------------ torn tails *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let small_record =
  Ckpt.Record.make
    ~config:
      {
        Ckpt.Record.cf_scenario = "safe-agreement";
        cf_n_s = 1;
        cf_depth = 6;
        cf_reduce = true;
        cf_split_depth = 2;
      }
    ~total:4
    ~done_:
      [
        {
          Ckpt.Record.dj_id = 1;
          dj_verdict = Exhaustive.Ok 9;
          dj_stats = Exhaustive.zero_stats;
        };
      ]

(* Two generations, then truncate the newest at every byte offset: the
   loader must always fall back to generation 0, never raise, and an
   untouched store must still prefer generation 1. *)
let torn_write_codec codec () =
  let old_value = J.Obj [ ("v", J.Int 1); ("marker", J.Str "old") ] in
  with_store ~codec (fun store ->
      (match Ckpt.Store.save store old_value with
      | Ok g -> check_int "first generation" 0 g
      | Error msg -> Alcotest.failf "save old: %s" msg);
      (match Ckpt.Store.save store (Ckpt.Record.json small_record) with
      | Ok g -> check_int "second generation" 1 g
      | Error msg -> Alcotest.failf "save new: %s" msg);
      let newest = Ckpt.Store.generation_path store 1 in
      let intact = read_file newest in
      check_bool "untouched store loads the newest" true
        (match Ckpt.Store.load store with
        | Some (1, _) -> true
        | _ -> false);
      for len = 0 to String.length intact - 1 do
        write_file newest (String.sub intact 0 len);
        match Ckpt.Store.load store with
        | Some (0, v) when v = old_value -> ()
        | Some (g, _) ->
          Alcotest.failf "truncated at %d: loaded generation %d" len g
        | None -> Alcotest.failf "truncated at %d: no fallback" len
      done;
      (* restore and flip one bit in every byte position: checksum (or
         header validation) must demote it identically *)
      for i = 0 to String.length intact - 1 do
        let b = Bytes.of_string intact in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
        write_file newest (Bytes.to_string b);
        match Ckpt.Store.load store with
        | Some (0, v) when v = old_value -> ()
        | Some (g, _) ->
          Alcotest.failf "bit flip at %d: loaded generation %d" i g
        | None -> Alcotest.failf "bit flip at %d: no fallback" i
      done)

(* ------------------------------------------------------- store mechanics *)

let test_generations_and_pruning () =
  with_store ~codec:Ckpt.Store.Json ~keep:2 (fun store ->
      for i = 0 to 4 do
        match Ckpt.Store.save store (J.Int i) with
        | Ok g -> check_int "generation number" i g
        | Error msg -> Alcotest.failf "save %d: %s" i msg
      done;
      Alcotest.(check (list int))
        "pruned to keep" [ 3; 4 ]
        (Ckpt.Store.generations store);
      check_bool "newest wins" true
        (Ckpt.Store.load store = Some (4, J.Int 4));
      (* a reopened store continues the numbering *)
      match Ckpt.Store.create (Ckpt.Store.dir store) with
      | Error msg -> Alcotest.failf "reopen: %s" msg
      | Ok store' -> (
        match Ckpt.Store.save store' (J.Int 5) with
        | Ok g -> check_int "numbering continues after reopen" 5 g
        | Error msg -> Alcotest.failf "save after reopen: %s" msg))

let test_empty_and_garbage () =
  with_store (fun store ->
      check_bool "empty store loads None" true (Ckpt.Store.load store = None);
      (* stray files that do not parse as generation names are ignored *)
      write_file
        (Filename.concat (Ckpt.Store.dir store) "not-a-generation")
        "junk";
      check_bool "stray file ignored" true (Ckpt.Store.load store = None))

(* Record validation: of_json must reject what make forbids. *)
let test_record_validation () =
  let json = Ckpt.Record.json small_record in
  (match Ckpt.Record.of_json json with
  | Ok r -> check_bool "round-trip equal" true (Ckpt.Record.equal small_record r)
  | Error msg -> Alcotest.failf "of_json: %s" msg);
  let reject what mangle =
    match Ckpt.Record.of_json (mangle json) with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error _ -> ()
  in
  reject "wrong version" (fun j ->
      match j with
      | J.Obj kvs ->
        J.Obj (List.map (fun (k, v) -> if k = "v" then (k, J.Int 2) else (k, v)) kvs)
      | j -> j);
  reject "id out of range" (fun j ->
      match j with
      | J.Obj kvs ->
        J.Obj
          (List.map
             (fun (k, v) -> if k = "total" then (k, J.Int 1) else (k, v))
             kvs)
      | j -> j);
  reject "not an object" (fun _ -> J.Str "nope")

let suite =
  [
    roundtrip_test Ckpt.Store.Json "store round-trip (json codec)";
    roundtrip_test Ckpt.Store.Binary "store round-trip (binary codec)";
    Alcotest.test_case "torn/corrupt tail rolls back (json)" `Quick
      (torn_write_codec Ckpt.Store.Json);
    Alcotest.test_case "torn/corrupt tail rolls back (binary)" `Quick
      (torn_write_codec Ckpt.Store.Binary);
    Alcotest.test_case "generations, pruning, reopen" `Quick
      test_generations_and_pruning;
    Alcotest.test_case "empty store and stray files" `Quick
      test_empty_and_garbage;
    Alcotest.test_case "record validation" `Quick test_record_validation;
  ]
