(* The distribution layer, proven the same way the reduction layers were:
   differentially. Splitting the search at a frontier, running every subtree
   job through the re-entrant engine and folding the merge monoids must
   change where the work happens and nothing else — same verdict, same exact
   credited schedule count, same lex-least counterexample as the
   single-process engine, for any split depth, any merge order, with and
   without reduction. Plus qcheck laws for the merge monoids themselves and
   an end-to-end pass through the coordinator over real TCP workers. *)

open Simkit

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let verdict_str = Test_exhaustive.verdict_str
let mk_ns = Test_exhaustive.mk_ns

let sa_build ~n_s () =
  let mem = Memory.create () in
  let sa = Bglib.Safe_agreement.create mem ~n:2 in
  let c_code i () =
    Bglib.Safe_agreement.propose sa ~me:i (Value.int (100 + i));
    let rec resolve () =
      match Bglib.Safe_agreement.try_resolve sa with
      | Some v -> Runtime.Op.decide v
      | None -> resolve ()
    in
    resolve ()
  in
  mk_ns ~n_c:2 ~n_s mem c_code

let sa_prop rt =
  match (Runtime.decision rt 0, Runtime.decision rt 1) with
  | Some a, Some b -> Value.equal a b
  | _ -> true

let sa_reduce ~n_s = { Exhaustive.sleep = true; symmetry = [ Pid.all_s n_s ] }

(* --- the reference distributed pipeline, in-process --- *)

let shuffle seed l =
  let st = Random.State.make [| seed |] in
  l
  |> List.map (fun x -> (Random.State.bits st, x))
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let dist_run ?(memo = true) ?reduce ?(mode = Exhaustive.Every)
    ?(order = Fun.id) ~build ~pids ~depth ~split_depth ~prop () =
  let fr = Exhaustive.split ~mode ?reduce ~build ~pids ~depth ~split_depth ~prop () in
  let results =
    List.map
      (fun sj ->
        Exhaustive.run_subtree ~memo ~mode ?reduce ~build ~pids ~depth ~prop
          sj)
      fr.Exhaustive.fr_jobs
  in
  let verdict =
    List.fold_left
      (fun acc (v, _) -> Exhaustive.merge_verdicts ~pids acc v)
      (Exhaustive.Ok fr.Exhaustive.fr_pruned)
      (order results)
  in
  let verdict =
    match fr.Exhaustive.fr_cex with
    | Some cex ->
      Exhaustive.merge_verdicts ~pids verdict (Exhaustive.Counterexample cex)
    | None -> verdict
  in
  let stats =
    List.fold_left
      (fun acc (_, s) -> Exhaustive.merge_stats acc s)
      fr.Exhaustive.fr_stats (order results)
  in
  (verdict, stats, List.length fr.Exhaustive.fr_jobs)

(* --- partition invariance: any frontier, any merge order --- *)

let test_partition_matches_run () =
  List.iter
    (fun (label, n_s, depth, reduce) ->
      let build = sa_build ~n_s in
      let pids = Pid.all ~n_c:2 ~n_s in
      let expected, _ = Exhaustive.run ?reduce ~build ~pids ~depth ~prop:sa_prop () in
      List.iter
        (fun split_depth ->
          List.iter
            (fun (olabel, order) ->
              let v, _, jobs =
                dist_run ?reduce ~order ~build ~pids ~depth ~split_depth
                  ~prop:sa_prop ()
              in
              check_bool
                (Fmt.str "%s sd=%d: frontier nonempty" label split_depth)
                true (jobs > 0);
              check_string
                (Fmt.str "%s sd=%d order=%s" label split_depth olabel)
                (verdict_str expected) (verdict_str v))
            [ ("dfs", Fun.id); ("rev", List.rev); ("shuffle", shuffle 42) ])
        [ 1; 2; 3 ])
    [
      ("plain", 1, 5, None);
      ("plain-ns2", 2, 4, None);
      ("reduced", 2, 5, Some (sa_reduce ~n_s:2));
      ("sleep-only", 1, 5, Some { Exhaustive.sleep = true; symmetry = [] });
    ]

(* With the memo off, effort is not path-dependent: the partitioned run must
   prune exactly what the single-process engine prunes, layer by layer. *)
let test_partition_pruning_counters_exact () =
  let n_s = 2 in
  let build = sa_build ~n_s in
  let pids = Pid.all ~n_c:2 ~n_s in
  let depth = 5 in
  let reduce = Some (sa_reduce ~n_s) in
  let expected_v, expected_s =
    Exhaustive.run ~memo:false ?reduce ~build ~pids ~depth ~prop:sa_prop ()
  in
  List.iter
    (fun split_depth ->
      let v, s, _ =
        dist_run ~memo:false ?reduce ~build ~pids ~depth ~split_depth
          ~prop:sa_prop ()
      in
      check_string
        (Fmt.str "verdict sd=%d" split_depth)
        (verdict_str expected_v) (verdict_str v);
      Alcotest.(check int)
        (Fmt.str "sleep_pruned sd=%d" split_depth)
        expected_s.Exhaustive.sleep_pruned s.Exhaustive.sleep_pruned;
      Alcotest.(check int)
        (Fmt.str "orbits_collapsed sd=%d" split_depth)
        expected_s.Exhaustive.orbits_collapsed s.Exhaustive.orbits_collapsed)
    [ 1; 2; 3 ]

(* --- lex-least counterexample selection is partition-order-invariant --- *)

let test_counterexample_partition_invariant () =
  let build = Test_exhaustive.race_build ~n_c:2 ~n_s:1 in
  let pids = Pid.all ~n_c:2 ~n_s:1 in
  let depth = 6 in
  let prop = Test_exhaustive.race_prop_false in
  List.iter
    (fun (label, reduce) ->
      let expected, _ = Exhaustive.run ?reduce ~build ~pids ~depth ~prop () in
      (match expected with
      | Exhaustive.Counterexample _ -> ()
      | Exhaustive.Ok _ -> Alcotest.fail "expected a counterexample");
      List.iter
        (fun split_depth ->
          List.iter
            (fun (olabel, order) ->
              let v, _, _ =
                dist_run ?reduce ~order ~build ~pids ~depth ~split_depth ~prop
                  ()
              in
              check_string
                (Fmt.str "%s sd=%d order=%s" label split_depth olabel)
                (verdict_str expected) (verdict_str v))
            [ ("dfs", Fun.id); ("rev", List.rev); ("shuffle", shuffle 7) ])
        [ 1; 2; 3; 4 ])
    [
      ("plain", None);
      ("reduced", Some (sa_reduce ~n_s:1));
    ]

(* a violation shallower than the frontier stops the split itself *)
let test_prefix_violation_stops_split () =
  let build = sa_build ~n_s:1 in
  let pids = Pid.all ~n_c:2 ~n_s:1 in
  let prop _ = false in
  let expected, _ = Exhaustive.run ~build ~pids ~depth:4 ~prop () in
  let fr = Exhaustive.split ~build ~pids ~depth:4 ~split_depth:2 ~prop () in
  check_bool "no jobs emitted" true (fr.Exhaustive.fr_jobs = []);
  match fr.Exhaustive.fr_cex with
  | None -> Alcotest.fail "split missed the prefix violation"
  | Some cex ->
    check_string "same counterexample" (verdict_str expected)
      (verdict_str (Exhaustive.Counterexample cex))

(* --- subtree jobs survive the wire format --- *)

let test_subtree_json_roundtrip () =
  let n_s = 2 in
  let build = sa_build ~n_s in
  let pids = Pid.all ~n_c:2 ~n_s in
  let fr =
    Exhaustive.split ~reduce:(sa_reduce ~n_s) ~build ~pids ~depth:5
      ~split_depth:2 ~prop:sa_prop ()
  in
  check_bool "have jobs" true (fr.Exhaustive.fr_jobs <> []);
  List.iter
    (fun sj ->
      let s = Obs.Json.to_string (Exhaustive.subtree_json sj) in
      match Obs.Json.of_string s with
      | Error e -> Alcotest.failf "unparseable subtree json: %s" e
      | Ok j -> (
        match Exhaustive.subtree_of_json j with
        | Error e -> Alcotest.failf "subtree_of_json: %s" e
        | Ok sj' ->
          check_bool
            (Fmt.str "job %d roundtrips" sj.Exhaustive.sj_id)
            true (sj = sj')))
    fr.Exhaustive.fr_jobs

(* --- qcheck laws for the merge monoids --- *)

let stats_eq a b =
  a.Exhaustive.nodes = b.Exhaustive.nodes
  && a.Exhaustive.steps_executed = b.Exhaustive.steps_executed
  && a.Exhaustive.replays = b.Exhaustive.replays
  && a.Exhaustive.runtimes_built = b.Exhaustive.runtimes_built
  && a.Exhaustive.memo_hits = b.Exhaustive.memo_hits
  && a.Exhaustive.sleep_pruned = b.Exhaustive.sleep_pruned
  && a.Exhaustive.orbits_collapsed = b.Exhaustive.orbits_collapsed
  && a.Exhaustive.wall_s = b.Exhaustive.wall_s

(* wall times as small dyadic rationals keep float addition exact, so the
   associativity law can be checked with plain equality *)
let stats_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun l ->
          match l with
          | [ a; b; c; d; e; f; g; w ] ->
            {
              Exhaustive.nodes = a;
              steps_executed = b;
              replays = c;
              runtimes_built = d;
              memo_hits = e;
              sleep_pruned = f;
              orbits_collapsed = g;
              wall_s = float_of_int w /. 8.;
            }
          | _ -> assert false)
        (list_size (return 8) small_nat))

let prop_merge_stats_monoid =
  QCheck.Test.make ~name:"merge_stats is a commutative monoid" ~count:200
    (QCheck.triple stats_arb stats_arb stats_arb)
    (fun (a, b, c) ->
      let ( + ) = Exhaustive.merge_stats in
      stats_eq (a + (b + c)) (a + b + c)
      && stats_eq (a + b) (b + a)
      && stats_eq (Exhaustive.zero_stats + a) a
      && stats_eq (a + Exhaustive.zero_stats) a)

let verdict_arb =
  let pids = Pid.all ~n_c:2 ~n_s:1 in
  QCheck.make
    QCheck.Gen.(
      frequency
        [
          (1, map (fun n -> Exhaustive.Ok n) small_nat);
          ( 2,
            map
              (fun is ->
                Exhaustive.Counterexample
                  (List.map (fun i -> List.nth pids (i mod 3)) is))
              (list_size (int_range 1 6) small_nat) );
        ])

let prop_merge_verdicts_monoid =
  let pids = Pid.all ~n_c:2 ~n_s:1 in
  QCheck.Test.make ~name:"merge_verdicts is a commutative monoid" ~count:500
    (QCheck.triple verdict_arb verdict_arb verdict_arb)
    (fun (a, b, c) ->
      let ( + ) = Exhaustive.merge_verdicts ~pids in
      verdict_str (a + (b + c)) = verdict_str (a + b + c)
      && verdict_str (a + b) = verdict_str (b + a)
      && verdict_str (Exhaustive.Ok 0 + a) = verdict_str a)

(* merged credited counts over a random partition of a frontier equal the
   single-process count: jobs are assigned to buckets arbitrarily, buckets
   are merged internally, then across — associativity in anger *)
let prop_partition_counts =
  let n_s = 1 in
  let build = sa_build ~n_s in
  let pids = Pid.all ~n_c:2 ~n_s in
  let depth = 5 in
  let expected, _ = Exhaustive.run ~build ~pids ~depth ~prop:sa_prop () in
  let fr = Exhaustive.split ~build ~pids ~depth ~split_depth:2 ~prop:sa_prop () in
  let results =
    List.map
      (fun sj ->
        fst (Exhaustive.run_subtree ~build ~pids ~depth ~prop:sa_prop sj))
      fr.Exhaustive.fr_jobs
  in
  QCheck.Test.make ~name:"random partitions merge to the exact count"
    ~count:50
    QCheck.(pair (int_range 1 5) (int_range 0 1000))
    (fun (buckets, seed) ->
      let st = Random.State.make [| seed |] in
      let parts = Array.make buckets (Exhaustive.Ok 0) in
      List.iter
        (fun v ->
          let b = Random.State.int st buckets in
          parts.(b) <- Exhaustive.merge_verdicts ~pids parts.(b) v)
        results;
      let merged =
        Array.fold_left
          (Exhaustive.merge_verdicts ~pids)
          (Exhaustive.Ok fr.Exhaustive.fr_pruned)
          parts
      in
      verdict_str merged = verdict_str expected)

(* --- end-to-end: the coordinator over real in-process TCP workers --- *)

let start_tcp_worker () =
  let cfg =
    {
      (Svc.Server.default_config ~listen:(Svc.Addr.Tcp ("127.0.0.1", 0))) with
      Svc.Server.workers = 1;
    }
  in
  let t = Svc.Server.start cfg in
  (t, Svc.Addr.to_string (Svc.Server.listen_addr t))

let with_tcp_workers n f =
  let servers = List.init n (fun _ -> start_tcp_worker ()) in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (t, _) ->
          Svc.Server.shutdown t;
          Svc.Server.wait t)
        servers)
    (fun () -> f servers)

(* 1, 2 and 4 workers must all reproduce the local engine bit-for-bit:
   verdict, credited count, and (race-false) the lex-least counterexample *)
let test_coordinator_matches_local () =
  List.iter
    (fun (name, depth, reduce) ->
      let sc =
        match Mcheck.Scenario.find name ~n_s:2 with
        | Ok sc -> sc
        | Error e -> Alcotest.fail e
      in
      let red = Mcheck.Scenario.reduction sc ~reduce in
      let expected, _ =
        Exhaustive.run ?reduce:red ~build:sc.Mcheck.Scenario.sc_build
          ~pids:sc.Mcheck.Scenario.sc_pids ~depth
          ~prop:sc.Mcheck.Scenario.sc_prop ()
      in
      List.iter
        (fun n ->
          with_tcp_workers n (fun servers ->
              let workers = List.map snd servers in
              match
                Dist.Coordinator.run ~reduce ~scenario:sc ~depth ~workers ()
              with
              | Error e -> Alcotest.failf "%s x%d: %s" name n e
              | Ok r ->
                check_string
                  (Printf.sprintf "%s depth %d reduce %b x%d workers" name
                     depth reduce n)
                  (verdict_str expected)
                  (verdict_str r.Dist.Coordinator.r_verdict)))
        [ 1; 2; 4 ])
    [
      ("safe-agreement", 6, false);
      ("safe-agreement", 6, true);
      ("race-false", 6, false);
      ("race-false", 6, true);
    ]

(* one worker address refuses connections: its jobs requeue onto the live
   worker and the run still completes exactly *)
let test_coordinator_survives_dead_worker () =
  let sc =
    match Mcheck.Scenario.find "safe-agreement" ~n_s:1 with
    | Ok sc -> sc
    | Error e -> Alcotest.fail e
  in
  let expected, _ =
    Exhaustive.run ~build:sc.Mcheck.Scenario.sc_build
      ~pids:sc.Mcheck.Scenario.sc_pids ~depth:6
      ~prop:sc.Mcheck.Scenario.sc_prop ()
  in
  (* grab a port nothing will be listening on by the time the coordinator
     dials it *)
  let dead_addr =
    let t, addr = start_tcp_worker () in
    Svc.Server.shutdown t;
    Svc.Server.wait t;
    addr
  in
  with_tcp_workers 1 (fun servers ->
      let workers = dead_addr :: List.map snd servers in
      match
        Dist.Coordinator.run ~retries:0 ~scenario:sc ~depth:6 ~workers ()
      with
      | Error e -> Alcotest.fail e
      | Ok r ->
        check_string "verdict with a dead worker" (verdict_str expected)
          (verdict_str r.Dist.Coordinator.r_verdict);
        let dead =
          List.filter
            (fun w -> w.Dist.Coordinator.wk_dead)
            r.Dist.Coordinator.r_workers
        in
        check_bool "the dead worker was noticed" true (List.length dead = 1));
  (* and a fleet that is entirely dead is an error, not a hang *)
  match
    Dist.Coordinator.run ~retries:0 ~scenario:sc ~depth:6
      ~workers:[ dead_addr ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "all-dead fleet reported success"

let suite =
  [
    Alcotest.test_case "partition matches run (all frontiers, orders)" `Quick
      test_partition_matches_run;
    Alcotest.test_case "pruning counters exact without memo" `Quick
      test_partition_pruning_counters_exact;
    Alcotest.test_case "counterexample partition-order-invariant" `Quick
      test_counterexample_partition_invariant;
    Alcotest.test_case "prefix violation stops the split" `Quick
      test_prefix_violation_stops_split;
    Alcotest.test_case "subtree json roundtrip" `Quick
      test_subtree_json_roundtrip;
    Alcotest.test_case "coordinator matches local over TCP (1/2/4 workers)"
      `Quick test_coordinator_matches_local;
    Alcotest.test_case "coordinator survives a dead worker" `Quick
      test_coordinator_survives_dead_worker;
    QCheck_alcotest.to_alcotest prop_merge_stats_monoid;
    QCheck_alcotest.to_alcotest prop_merge_verdicts_monoid;
    QCheck_alcotest.to_alcotest prop_partition_counts;
  ]
