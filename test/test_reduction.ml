(* The reduction layers of the exhaustive checker, proven differentially:
   sleep-set partial-order reduction and symmetry reduction must change how
   much work the checker does, and nothing else — same verdict, same exact
   schedule count, same counterexample as the unreduced engines, at 1 and 4
   domains. Plus direct soundness checks on the two ingredients: the
   independence relation (commuting adjacent independent steps preserves
   final digests) and the orbit accounting (canonical representatives
   weighted by orbit size partition the full schedule space). *)

open Simkit

let check_bool = Alcotest.(check bool)
let verdict_str = Test_exhaustive.verdict_str
let mk_ns = Test_exhaustive.mk_ns

let s_class n_s = [ Pid.all_s n_s ]

(* --- the differential battery --- *)

let assert_engines_agree ~label ~build ~pids ~depth ~mode ~prop ~reduce =
  let oracle, _ = Exhaustive.run_replay ~mode ~build ~pids ~depth ~prop () in
  List.iter
    (fun (variant, run) ->
      let v, _ = run () in
      Alcotest.(check string) (label ^ " " ^ variant) (verdict_str oracle)
        (verdict_str v))
    [
      ( "memo",
        fun () -> Exhaustive.run ~mode ~build ~pids ~depth ~prop () );
      ( "reduced",
        fun () -> Exhaustive.run ~reduce ~mode ~build ~pids ~depth ~prop () );
      ( "memo x4",
        fun () ->
          Exhaustive.run ~domains:4 ~mode ~build ~pids ~depth ~prop () );
      ( "reduced x4",
        fun () ->
          Exhaustive.run ~domains:4 ~reduce ~mode ~build ~pids ~depth ~prop ()
      );
    ]

let test_differential_safe_agreement () =
  let build () =
    let mem = Memory.create () in
    let sa = Bglib.Safe_agreement.create mem ~n:2 in
    let c_code i () =
      Bglib.Safe_agreement.propose sa ~me:i (Value.int (100 + i));
      let rec resolve () =
        match Bglib.Safe_agreement.try_resolve sa with
        | Some v -> Runtime.Op.decide v
        | None -> resolve ()
      in
      resolve ()
    in
    mk_ns ~n_c:2 ~n_s:2 mem c_code
  in
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b -> Value.equal a b
    | _ -> true
  in
  assert_engines_agree ~label:"safe-agreement" ~build
    ~pids:(Pid.all ~n_c:2 ~n_s:2) ~depth:6 ~mode:Exhaustive.Every ~prop
    ~reduce:{ Exhaustive.sleep = true; symmetry = s_class 2 }

let test_differential_commit_adopt () =
  (* outcome encoded into the decision value (2v + commit-bit) so the
     property is a pure state function — shareable across domains. *)
  let build () =
    let mem = Memory.create () in
    let ca = Bglib.Commit_adopt.create mem ~n:2 in
    let c_code i () =
      let o = Bglib.Commit_adopt.run ca ~me:i (Value.int i) in
      let v = Value.to_int (Bglib.Commit_adopt.outcome_value o) in
      let bit = match o with Bglib.Commit_adopt.Commit _ -> 1 | _ -> 0 in
      Runtime.Op.decide (Value.int ((2 * v) + bit))
    in
    mk_ns ~n_c:2 ~n_s:1 mem c_code
  in
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b ->
      let a = Value.to_int a and b = Value.to_int b in
      if a land 1 = 1 || b land 1 = 1 then a asr 1 = b asr 1 else true
    | _ -> true
  in
  assert_engines_agree ~label:"commit-adopt" ~build ~pids:(Pid.all_c 2)
    ~depth:7 ~mode:Exhaustive.Final ~prop
    ~reduce:{ Exhaustive.sleep = true; symmetry = [] }

let test_differential_trivial_nsa () =
  let build () =
    let mem = Memory.create () in
    let input_regs = Memory.alloc mem 2 in
    let ctx = { Efd.Algorithm.mem; n_c = 2; n_s = 2; input_regs } in
    let inst = (Efd.Trivial_nsa.make ()).Efd.Algorithm.make ctx in
    let c_code i () =
      Runtime.Op.write input_regs.(i) (Value.int (1 + i));
      inst.Efd.Algorithm.c_run i (Value.int (1 + i))
    in
    let s_code i () = inst.Efd.Algorithm.s_run i in
    Runtime.create
      {
        Runtime.n_c = 2;
        n_s = 2;
        memory = mem;
        pattern = Failure.failure_free 2;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code ~s_code
  in
  let prop rt =
    List.for_all
      (fun i ->
        match Runtime.decision rt i with
        | None -> true
        | Some v -> Value.to_int v = 1 || Value.to_int v = 2)
      [ 0; 1 ]
  in
  assert_engines_agree ~label:"trivial-nsa" ~build
    ~pids:(Pid.all ~n_c:2 ~n_s:2) ~depth:6 ~mode:Exhaustive.Every ~prop
    ~reduce:{ Exhaustive.sleep = true; symmetry = s_class 2 }

let test_differential_ct_consensus () =
  (* FD queries and S-code that distinguishes indices: no symmetry class
     applies and queries are never commuted ([F_timedep]) — the battery
     checks sleep pruning stays sound in the presence of advice. *)
  let pattern = Failure.failure_free 2 in
  let history =
    Fdlib.Fd.draw (Fdlib.Classic.eventually_strong ~max_stab:4 ()) pattern
      ~seed:1
  in
  let build () =
    let mem = Memory.create () in
    let input_regs = Memory.alloc mem 2 in
    let ctx = { Efd.Algorithm.mem; n_c = 2; n_s = 2; input_regs } in
    let inst = (Efd.Ct_consensus.make ()).Efd.Algorithm.make ctx in
    let c_code i () =
      Runtime.Op.write input_regs.(i) (Value.int (10 + i));
      inst.Efd.Algorithm.c_run i (Value.int (10 + i))
    in
    let s_code i () = inst.Efd.Algorithm.s_run i in
    Runtime.create
      {
        Runtime.n_c = 2;
        n_s = 2;
        memory = mem;
        pattern;
        history;
        record_trace = false;
      }
      ~c_code ~s_code
  in
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b -> Value.equal a b
    | _ -> true
  in
  assert_engines_agree ~label:"ct-consensus" ~build
    ~pids:(Pid.all ~n_c:2 ~n_s:2) ~depth:5 ~mode:Exhaustive.Every ~prop
    ~reduce:{ Exhaustive.sleep = true; symmetry = [] }

let test_differential_violation () =
  (* Seeded violation: the race config under the deliberately false claim.
     All three engines must report the identical (lex-least) schedule. *)
  let build = Test_exhaustive.race_build ~n_c:2 ~n_s:1 in
  let prop = Test_exhaustive.race_prop_false in
  let pids = Pid.all ~n_c:2 ~n_s:1 in
  let reduce = { Exhaustive.sleep = true; symmetry = [] } in
  let oracle, _ = Exhaustive.run_replay ~build ~pids ~depth:6 ~prop () in
  (match oracle with
  | Exhaustive.Counterexample _ -> ()
  | Exhaustive.Ok _ -> Alcotest.fail "expected a counterexample");
  List.iter
    (fun (variant, run) ->
      let v, _ = run () in
      Alcotest.(check string) ("violation " ^ variant) (verdict_str oracle)
        (verdict_str v))
    [
      ("memo", fun () -> Exhaustive.run ~build ~pids ~depth:6 ~prop ());
      ( "reduced",
        fun () -> Exhaustive.run ~reduce ~build ~pids ~depth:6 ~prop () );
    ];
  (* sharded reduced run: any reported counterexample must be genuine *)
  match
    Exhaustive.run ~domains:4 ~reduce ~build ~pids ~depth:6 ~prop ()
  with
  | Exhaustive.Ok _, _ -> Alcotest.fail "expected a counterexample"
  | Exhaustive.Counterexample cex, _ ->
    check_bool "sharded reduced counterexample reproduces the violation"
      false
      (Exhaustive.replay_ok ~build ~prop cex)

(* --- independence soundness: commuting adjacent independent steps
       preserves the final digest --- *)

let indep_build ~n_c ~n_s () =
  let mem = Memory.create () in
  let regs = Memory.alloc mem n_c in
  let c_code i () =
    Runtime.Op.write regs.(i) (Value.int i);
    let v = Runtime.Op.read regs.((i + 1) mod n_c) in
    Runtime.Op.decide v
  in
  mk_ns ~n_c ~n_s mem c_code

let run_digest build sched =
  let rt = build () in
  List.iter (Runtime.step rt) sched;
  let d = Runtime.digest rt in
  Runtime.destroy rt;
  d

let swap_at k l =
  let rec go k = function
    | a :: b :: rest when k = 0 -> b :: a :: rest
    | a :: rest -> a :: go (k - 1) rest
    | [] -> []
  in
  go k l

let prop_independent_swap =
  QCheck.Test.make
    ~name:"swapping adjacent independent steps preserves the final digest"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 2 10) (int_range 0 3))
        (int_range 0 1000))
    (fun (idxs, at) ->
      let pids = Array.of_list (Pid.all ~n_c:3 ~n_s:1) in
      let build = indep_build ~n_c:3 ~n_s:1 in
      let sched = List.map (fun i -> pids.(i)) idxs in
      let at = at mod (List.length sched - 1) in
      let p = List.nth sched at and q = List.nth sched (at + 1) in
      let prefix = List.filteri (fun i _ -> i < at) sched in
      (* independence judged at the state where the pair is about to run *)
      let rt = build () in
      List.iter (Runtime.step rt) prefix;
      let indep = Runtime.independent rt p q in
      Runtime.destroy rt;
      if not indep then QCheck.assume_fail ()
      else run_digest build sched = run_digest build (swap_at at sched))

let test_dependent_swap_differs () =
  (* Negative control: two writes to the same register are dependent, and
     swapping them is visible in the final state. *)
  let build = Test_exhaustive.race_build ~n_c:2 ~n_s:1 in
  let rt = build () in
  check_bool "write/write same register is dependent" false
    (Runtime.independent rt (Pid.c 0) (Pid.c 1));
  check_bool "a pid is never independent of itself" false
    (Runtime.independent rt (Pid.c 0) (Pid.c 0));
  Runtime.destroy rt;
  check_bool "dependent swap reaches a different state" false
    (run_digest build [ Pid.c 0; Pid.c 1 ]
    = run_digest build [ Pid.c 1; Pid.c 0 ])

(* --- orbit accounting: canonical representatives weighted by orbit size
       partition the full schedule space --- *)

let test_orbit_partition () =
  let pids = [ Pid.c 0; Pid.s 0; Pid.s 1; Pid.s 2 ] in
  let classes = [ Pid.all_s 3 ] in
  let depth = 4 in
  let rec schedules d =
    if d = 0 then [ [] ]
    else
      List.concat_map (fun s -> List.map (fun p -> p :: s) pids)
        (schedules (d - 1))
  in
  let all = schedules depth in
  Alcotest.(check int) "full space" (4 * 4 * 4 * 4) (List.length all);
  let canonical =
    List.filter (fun s -> Schedule.canonicalize ~classes s = s) all
  in
  (* canonicalize lands on a canonical representative and is idempotent *)
  List.iter
    (fun s ->
      let c = Schedule.canonicalize ~classes s in
      check_bool "canonicalize is canonical" true
        (Schedule.canonicalize ~classes c = c))
    all;
  (* weighted representatives cover the space exactly once *)
  let covered =
    List.fold_left
      (fun n s -> n + Schedule.orbit_size ~classes s)
      0 canonical
  in
  Alcotest.(check int) "sum of orbit sizes over canonical reps"
    (List.length all) covered;
  (* orbit size is constant on an orbit *)
  List.iter
    (fun s ->
      Alcotest.(check int) "orbit size invariant under canonicalization"
        (Schedule.orbit_size ~classes (Schedule.canonicalize ~classes s))
        (Schedule.orbit_size ~classes s))
    all

(* --- reduction layers report their work and reject bad classes --- *)

let test_reduction_stats_and_validation () =
  let build = Test_exhaustive.race_build ~n_c:2 ~n_s:2 in
  let prop = Test_exhaustive.race_prop_valid ~n_c:2 in
  let pids = Pid.all ~n_c:2 ~n_s:2 in
  let v, st =
    Exhaustive.run
      ~reduce:{ Exhaustive.sleep = true; symmetry = s_class 2 }
      ~build ~pids ~depth:5 ~prop ()
  in
  (match v with
  | Exhaustive.Ok n -> Alcotest.(check int) "count stays exact" 1024 n
  | Exhaustive.Counterexample _ -> Alcotest.fail "unexpected counterexample");
  check_bool "sleep sets fired" true (st.Exhaustive.sleep_pruned > 0);
  check_bool "orbits collapsed" true (st.Exhaustive.orbits_collapsed > 0);
  (* ~reduce:no_reduction is the unreduced engine *)
  let v', st' =
    Exhaustive.run ~reduce:Exhaustive.no_reduction ~build ~pids ~depth:5
      ~prop ()
  in
  Alcotest.(check string) "no_reduction = plain engine" (verdict_str v)
    (verdict_str v');
  Alcotest.(check int) "no_reduction prunes nothing" 0
    (st'.Exhaustive.sleep_pruned + st'.Exhaustive.orbits_collapsed);
  let rejects r =
    match Exhaustive.run ~reduce:r ~build ~pids ~depth:2 ~prop () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "foreign pid rejected" true
    (rejects { Exhaustive.sleep = false; symmetry = [ [ Pid.s 7 ] ] });
  check_bool "overlapping classes rejected" true
    (rejects
       {
         Exhaustive.sleep = false;
         symmetry = [ [ Pid.s 0; Pid.s 1 ]; [ Pid.s 1 ] ];
       })

let suite =
  [
    Alcotest.test_case "differential: safe agreement" `Quick
      test_differential_safe_agreement;
    Alcotest.test_case "differential: commit-adopt" `Quick
      test_differential_commit_adopt;
    Alcotest.test_case "differential: trivial n-set-agreement" `Quick
      test_differential_trivial_nsa;
    Alcotest.test_case "differential: CT consensus (FD advice)" `Quick
      test_differential_ct_consensus;
    Alcotest.test_case "differential: seeded violation, same cex" `Quick
      test_differential_violation;
    QCheck_alcotest.to_alcotest prop_independent_swap;
    Alcotest.test_case "dependent swap is visible (negative control)" `Quick
      test_dependent_swap_differs;
    Alcotest.test_case "symmetry orbits partition the schedule space" `Quick
      test_orbit_partition;
    Alcotest.test_case "reduction stats and class validation" `Quick
      test_reduction_stats_and_validation;
  ]
