(* The codec differential: the binary codec must carry exactly the value
   model of the JSON codec — same envelopes, same params, same validation
   outcomes. Every property round-trips arbitrary envelopes through both
   codecs and compares the decoded values, so a divergence in either
   direction (a binary writer bug, a binary reader bug, a JSON
   canonicalization the binary side missed) shows up as a concrete
   counterexample. The robustness property feeds the binary reader
   adversarial bytes: it must answer [Error], never raise or overread. *)

module J = Obs.Json
module P = Svc.Protocol
module C = Svc.Protocol.Codec

(* ------------------------------------------------------------ generators *)

let verbs =
  [
    P.Ping; P.Stats; P.Metrics; P.Solve; P.Modelcheck; P.Subtree; P.Fuzz;
    P.Shutdown; P.Hello;
  ]

let err_codes =
  [
    P.Bad_request; P.Oversized; P.Overloaded; P.Deadline_exceeded;
    P.Shutting_down; P.Internal;
  ]

(* printable strings keep the comparison about codecs, not about UTF-8
   validation corner cases in the JSON escape tables *)
let str_gen = QCheck.Gen.(string_size ~gen:printable (int_bound 12))

let float_gen =
  QCheck.Gen.(
    frequency
      [
        (8, float);
        (1, oneofl [ Float.nan; Float.infinity; Float.neg_infinity ]);
        (1, oneofl [ 0.; -0.; 1.5; -1e300; 4.25e-12 ]);
      ])

let value_gen =
  QCheck.Gen.(
    sized_size (int_bound 4) @@ fix (fun self n ->
        let leaf =
          frequency
            [
              (1, return J.Null);
              (1, map (fun b -> J.Bool b) bool);
              (3, map (fun i -> J.Int i) int);
              (2, map (fun f -> J.Float f) float_gen);
              (3, map (fun s -> J.Str s) str_gen);
            ]
        in
        if n = 0 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 1,
                map (fun xs -> J.List xs)
                  (list_size (int_bound 4) (self (n / 2))) );
              ( 1,
                map (fun kvs -> J.Obj kvs)
                  (list_size (int_bound 4) (pair str_gen (self (n / 2)))) );
            ]))

(* params must be an object on the wire — both decoders enforce it *)
let params_gen =
  QCheck.Gen.(
    map (fun kvs -> J.Obj kvs) (list_size (int_bound 4) (pair str_gen value_gen)))

let request_gen =
  QCheck.Gen.(
    map
      (fun (id, verb, params, deadline) ->
        P.request ?deadline_ms:deadline ~params ~id verb)
      (quad int (oneofl verbs) params_gen
         (opt (int_range 1 P.max_deadline_ms))))

let response_gen =
  QCheck.Gen.(
    map
      (fun (id, result) ->
        match result with
        | Ok v -> P.ok ~id v
        | Error (code, msg) -> P.error ~id code msg)
      (pair int
         (frequency
            [
              (3, map (fun v -> Ok v) value_gen);
              ( 1,
                map
                  (fun (c, m) -> Error (c, m))
                  (pair (oneofl err_codes) str_gen) );
            ])))

let request_arb =
  QCheck.make request_gen ~print:(fun rq ->
      J.to_string_pretty (P.request_json rq))

let response_arb =
  QCheck.make response_gen ~print:(fun rs ->
      J.to_string_pretty (P.response_json rs))

(* ------------------------------------------------------------ equality *)

(* J.equal, not (=): it treats NaN as equal to itself, and NaN params are
   legal inputs (both writers canonicalize them to null, but the originals
   still flow through printers on failure) *)
let request_equal a b =
  a.P.rq_id = b.P.rq_id
  && a.P.rq_verb = b.P.rq_verb
  && a.P.rq_deadline_ms = b.P.rq_deadline_ms
  && J.equal a.P.rq_params b.P.rq_params

let response_equal a b =
  a.P.rs_id = b.P.rs_id
  &&
  match (a.P.rs_result, b.P.rs_result) with
  | Ok va, Ok vb -> J.equal va vb
  | Error (ca, ma), Error (cb, mb) -> ca = cb && ma = mb
  | _ -> false

let decode_request_exn codec rq =
  match C.decode_request (C.encode_request codec rq) with
  | Ok rq' -> rq'
  | Error msg ->
    QCheck.Test.fail_reportf "%s decode failed: %s" (C.to_string codec) msg

let decode_response_exn codec rs =
  match C.decode_response (C.encode_response codec rs) with
  | Ok rs' -> rs'
  | Error msg ->
    QCheck.Test.fail_reportf "%s decode failed: %s" (C.to_string codec) msg

(* ------------------------------------------------------------ properties *)

(* the differential oracle: an envelope pushed through each codec decodes
   to the same value — the JSON path is the spec, the binary path must
   agree with it field for field *)
let prop_request_differential =
  QCheck.Test.make ~name:"request: binary decodes equal to JSON" ~count:500
    request_arb (fun rq ->
      request_equal
        (decode_request_exn C.Json rq)
        (decode_request_exn C.Binary rq))

let prop_response_differential =
  QCheck.Test.make ~name:"response: binary decodes equal to JSON" ~count:500
    response_arb (fun rs ->
      response_equal
        (decode_response_exn C.Json rs)
        (decode_response_exn C.Binary rs))

(* binary round-trips exactly (modulo the shared non-finite-float
   canonicalization, which the JSON writer applies too) *)
let canonical_finite rq =
  let rec finite = function
    | J.Float f -> Float.is_finite f
    | J.List xs -> List.for_all finite xs
    | J.Obj kvs -> List.for_all (fun (_, v) -> finite v) kvs
    | J.Null | J.Bool _ | J.Int _ | J.Str _ -> true
  in
  finite rq.P.rq_params

let prop_binary_roundtrip =
  QCheck.Test.make ~name:"request: binary round-trips finite values exactly"
    ~count:500
    (QCheck.make
       QCheck.Gen.(graft_corners request_gen [] ())
       ~print:(fun rq -> J.to_string_pretty (P.request_json rq)))
    (fun rq ->
      QCheck.assume (canonical_finite rq);
      request_equal rq (decode_request_exn C.Binary rq))

(* adversarial bytes: anything opening with the magic byte reaches the
   binary reader, which must return a result — no exception, ever *)
let prop_binary_robust =
  QCheck.Test.make ~name:"binary reader never raises on junk" ~count:1000
    QCheck.(
      make
        Gen.(
          map
            (fun s -> String.make 1 C.magic ^ s)
            (string_size ~gen:(char_range '\x00' '\xff') (int_bound 64)))
        ~print:(fun s -> String.escaped s))
    (fun payload ->
      (match C.decode_request payload with Ok _ | Error _ -> true)
      && match C.decode_response payload with Ok _ | Error _ -> true)

(* ------------------------------------------------------------ unit cases *)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* the canonicalization pinned down: both writers turn non-finite floats
   into null, so the decoded params agree (and never carry a NaN) *)
let test_nonfinite_floats () =
  List.iter
    (fun f ->
      let rq =
        P.request ~params:(J.Obj [ ("x", J.Float f) ]) ~id:7 P.Solve
      in
      let decoded codec = (decode_request_exn codec rq).P.rq_params in
      check_bool "json side is null" true
        (J.equal (decoded C.Json) (J.Obj [ ("x", J.Null) ]));
      check_bool "binary side is null" true
        (J.equal (decoded C.Binary) (J.Obj [ ("x", J.Null) ])))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

(* both decoders reject the same invalid deadlines with the same shape of
   error — validation must not depend on the codec *)
let test_deadline_validation_parity () =
  let encode_binary_deadline ms =
    (* hand-build the envelope: the encoder refuses to emit what the
       decoder must reject *)
    let buf = Buffer.create 32 in
    Buffer.add_char buf C.magic;
    Buffer.add_string buf "\x01\x00\x00\x01";
    Buffer.add_int64_be buf 9L;
    Buffer.add_int64_be buf (Int64.of_int ms);
    Buffer.add_string buf "\x07\x00\x00\x00\x00";
    Buffer.contents buf
  in
  let json_deadline ms =
    J.to_string
      (J.Obj
         [
           ("v", J.Int 1); ("id", J.Int 9); ("verb", J.Str "ping");
           ("deadline_ms", J.Int ms);
         ])
  in
  List.iter
    (fun ms ->
      match
        (C.decode_request (json_deadline ms),
         C.decode_request (encode_binary_deadline ms))
      with
      | Error _, Error _ -> ()
      | Ok _, _ -> Alcotest.failf "json accepted deadline %d" ms
      | _, Ok _ -> Alcotest.failf "binary accepted deadline %d" ms)
    [ 0; -1; P.max_deadline_ms + 1 ];
  (* and the valid extremes parse on both *)
  List.iter
    (fun ms ->
      match
        (C.decode_request (json_deadline ms),
         C.decode_request (encode_binary_deadline ms))
      with
      | Ok a, Ok b ->
        check_bool "equal deadline" true (request_equal a b);
        check_bool "deadline survives" true (a.P.rq_deadline_ms = Some ms)
      | Error e, _ | _, Error e -> Alcotest.failf "deadline %d: %s" ms e)
    [ 1; P.max_deadline_ms ]

let test_detect () =
  let rq = P.request ~id:1 P.Ping in
  check_bool "json detects json" true
    (C.detect (C.encode_request C.Json rq) = C.Json);
  check_bool "binary detects binary" true
    (C.detect (C.encode_request C.Binary rq) = C.Binary);
  check_bool "empty detects json" true (C.detect "" = C.Json)

let test_trailing_garbage_rejected () =
  let payload = C.encode_request C.Binary (P.request ~id:1 P.Ping) in
  match C.decode_request (payload ^ "\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing byte accepted"

(* hello negotiation is plain data: offered codec comes back acked, an
   unknown offer downgrades to json *)
let test_hello_ack () =
  let ack params =
    C.to_string (P.hello_ack params)
  in
  check_string "binary acked" "binary" (ack (P.hello_params C.Binary));
  check_string "json acked" "json" (ack (P.hello_params C.Json));
  check_string "unknown offer downgrades" "json"
    (ack (J.Obj [ ("codec", J.Str "protobuf") ]));
  check_string "missing offer downgrades" "json" (ack (J.Obj []));
  check_bool "ack result parses back" true
    (P.codec_of_hello_result (P.hello_result C.Binary) = Some C.Binary)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_request_differential;
      prop_response_differential;
      prop_binary_roundtrip;
      prop_binary_robust;
    ]
  @ [
      Alcotest.test_case "non-finite floats canonicalize to null" `Quick
        test_nonfinite_floats;
      Alcotest.test_case "deadline validation parity" `Quick
        test_deadline_validation_parity;
      Alcotest.test_case "codec detection by first byte" `Quick test_detect;
      Alcotest.test_case "trailing garbage rejected" `Quick
        test_trailing_garbage_rejected;
      Alcotest.test_case "hello ack rules" `Quick test_hello_ack;
    ]
