#!/bin/sh
# CI smoke test for the scenario DSL + campaign runner: start `wfa serve`,
# run the committed mixed smoke campaign against it (deliberate failures,
# an undeclared deadline, an engine error) and assert the EXACT outcome
# split -- a misclassified row (a timeout counted as a fail, a failure
# counted as an error) changes the split and fails here. Then run the full
# conformance matrix (>= 100 scenarios, every expectation must hold)
# through the same server and record BENCH_campaign.json for the baseline
# gate. Finally, a malformed caller-supplied scenario must come back as a
# structured bad_request on a connection that keeps working.
set -eu

WFA=${WFA:-_build/default/bin/wfa.exe}
SOCK="/tmp/wfa-campaign-$$.sock"
OUT="/tmp/wfa-campaign-$$.out"

cleanup() {
  kill "$SRV" 2>/dev/null || true
  rm -f "$SOCK" "$OUT"
}

"$WFA" serve --socket "$SOCK" --workers 2 &
SRV=$!
trap cleanup EXIT

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "campaign_smoke: socket never appeared" >&2; exit 1; }
  sleep 0.1
done

echo "campaign_smoke: mixed smoke campaign (exact split)"
if "$WFA" campaign bench/campaigns/smoke.json --socket "$SOCK" > "$OUT"; then
  echo "campaign_smoke: smoke campaign unexpectedly succeeded" >&2
  cat "$OUT" >&2
  exit 1
fi
cat "$OUT"
case "$(cat "$OUT")" in
  *"total: 20 scenarios, 16 pass, 2 fail, 1 timeout, 1 error"*) ;;
  *) echo "campaign_smoke: wrong outcome split" >&2; exit 1 ;;
esac

echo "campaign_smoke: conformance campaign (all expectations must hold)"
"$WFA" campaign bench/campaigns/conformance.json --socket "$SOCK" \
  --json BENCH_campaign.json > "$OUT"
tail -1 "$OUT"
case "$(cat "$OUT")" in
  *", 0 fail, 0 timeout, 0 error"*) ;;
  *) echo "campaign_smoke: conformance campaign had unexpected outcomes" >&2
     cat "$OUT" >&2; exit 1 ;;
esac
[ -s BENCH_campaign.json ] || {
  echo "campaign_smoke: BENCH_campaign.json missing" >&2; exit 1
}

echo "campaign_smoke: malformed scenario is a structured error"
if "$WFA" call --socket "$SOCK" scenario \
  --params '{"v":1,"name":"x","verb":"modelcheck","params":{"scenario":"typo"},"expect":{"outcome":"safe"}}' \
  2> "$OUT"; then
  echo "campaign_smoke: malformed scenario unexpectedly accepted" >&2
  exit 1
fi
case "$(cat "$OUT")" in
  *'bad_request'*'unknown scenario "typo"'*) ;;
  *) echo "campaign_smoke: missing structured diagnostics" >&2
     cat "$OUT" >&2; exit 1 ;;
esac

# the rejected scenario must not have hurt the server
echo "campaign_smoke: server still answers after the reject"
"$WFA" call --socket "$SOCK" ping

"$WFA" call --socket "$SOCK" shutdown > /dev/null 2>&1 || true
wait "$SRV"

trap - EXIT
rm -f "$SOCK" "$OUT"
echo "campaign_smoke: ok"
