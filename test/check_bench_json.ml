(* Standalone validator for wfa.bench files: CI runs it over the recorded
   BENCH_*.json artifacts and fails the build on invalid JSON or a record
   that does not match the documented schema (EXPERIMENTS.md).

   $ check_bench_json.exe BENCH_e1.json BENCH_e5.json ...

   With --baseline DIR, each FILE is additionally compared against
   DIR/basename(FILE): rows are matched by their full label set, and any
   throughput metric (name ending in "_per_s") that dropped below a third
   of its baseline value fails the check. Rows or metrics present on only
   one side are ignored — the gate catches regressions, not schema drift
   (the schema check above does that).

   $ check_bench_json.exe --baseline baseline/ BENCH_e1.json ...           *)

let errors = ref 0

let err path fmt =
  Fmt.kstr
    (fun msg ->
      incr errors;
      Fmt.epr "%s: %s@." path msg)
    fmt

let check_row path i row =
  match row with
  | Obs.Json.Obj fields ->
    (match List.assoc_opt "labels" fields with
    | Some (Obs.Json.Obj labels) ->
      if
        List.exists
          (fun (_, v) -> match v with Obs.Json.Str _ -> false | _ -> true)
          labels
      then err path "row %d: non-string label value" i
    | Some _ -> err path "row %d: labels is not an object" i
    | None -> err path "row %d: missing labels" i);
    (match List.assoc_opt "metrics" fields with
    | Some (Obs.Json.Obj _) -> ()
    | Some _ -> err path "row %d: metrics is not an object" i
    | None -> err path "row %d: missing metrics" i)
  | _ -> err path "row %d: not an object" i

(* -- baseline regression gate ------------------------------------------- *)

(* A row's identity is its full label set, order-insensitive. *)
let row_key row =
  match Obs.Json.member "labels" row with
  | Some (Obs.Json.Obj labels) ->
    List.filter_map
      (fun (k, v) ->
        match v with Obs.Json.Str s -> Some (k, s) | _ -> None)
      labels
    |> List.sort compare
  | _ -> []

let row_metrics row =
  match Obs.Json.member "metrics" row with
  | Some (Obs.Json.Obj metrics) -> metrics
  | _ -> []

let rows_of json =
  match Obs.Json.member "rows" json with
  | Some (Obs.Json.List rows) -> rows
  | _ -> []

let is_throughput name =
  String.length name >= 6
  && String.sub name (String.length name - 6) 6 = "_per_s"

let pp_key ppf key =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ",") (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.string))
    key

(* Fail when a throughput metric fell below a third of its baseline. *)
let compare_against_baseline path fresh base =
  let base_rows =
    List.map (fun row -> (row_key row, row_metrics row)) (rows_of base)
  in
  let compared = ref 0 in
  List.iter
    (fun row ->
      let key = row_key row in
      match List.assoc_opt key base_rows with
      | None -> ()
      | Some base_metrics ->
        List.iter
          (fun (name, v) ->
            if is_throughput name then
              match
                (Obs.Json.to_float_opt v,
                 Option.bind (List.assoc_opt name base_metrics)
                   Obs.Json.to_float_opt)
              with
              | Some fresh_v, Some base_v ->
                incr compared;
                if fresh_v < base_v /. 3. then
                  err path "row %a: %s regressed >3x: %.0f -> %.0f (floor %.0f)"
                    pp_key key name base_v fresh_v (base_v /. 3.)
              | _ -> ())
          (row_metrics row))
    (rows_of fresh);
  !compared

let read_json path =
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error e ->
    err path "unreadable: %s" e;
    None
  | contents -> (
    match Obs.Json.of_string contents with
    | Error e ->
      err path "invalid JSON: %s" e;
      None
    | Ok json -> Some json)

let check_baseline dir path json =
  let base_path = Filename.concat dir (Filename.basename path) in
  if not (Sys.file_exists base_path) then
    Fmt.pr "%s: no baseline %s, skipping gate@." path base_path
  else
    match read_json base_path with
    | None -> ()
    | Some base ->
      let before = !errors in
      let compared = compare_against_baseline path json base in
      if !errors = before then
        Fmt.pr "%s: baseline ok (%d throughput metrics >= %s / 3)@." path
          compared base_path

let check ?baseline path =
  let before = !errors in
  match read_json path with
  | None -> ()
  | Some json ->
      let str field =
        Obs.Json.member field json |> Fun.flip Option.bind Obs.Json.to_string_opt
      in
      let int field =
        Obs.Json.member field json |> Fun.flip Option.bind Obs.Json.to_int_opt
      in
      if str "schema" <> Some Obs.Bench_record.schema_name then
        err path "schema is not %S" Obs.Bench_record.schema_name;
      (match int "version" with
      | Some v when v >= 1 && v <= Obs.Bench_record.schema_version -> ()
      | Some v -> err path "unsupported version %d" v
      | None -> err path "missing version");
      (match str "id" with
      | Some id when id <> "" -> ()
      | _ -> err path "missing or empty id");
      (match Obs.Json.member "rows" json with
      | Some (Obs.Json.List rows) -> List.iteri (check_row path) rows
      | Some _ -> err path "rows is not a list"
      | None -> err path "missing rows");
      if !errors = before then Fmt.pr "%s: ok@." path;
      Option.iter (fun dir -> check_baseline dir path json) baseline

let () =
  let baseline, paths =
    match List.tl (Array.to_list Sys.argv) with
    | "--baseline" :: dir :: rest -> (Some dir, rest)
    | args -> (None, args)
  in
  if paths = [] then begin
    Fmt.epr "usage: check_bench_json [--baseline DIR] FILE.json ...@.";
    exit 2
  end;
  List.iter (check ?baseline) paths;
  exit (if !errors > 0 then 1 else 0)
