(* Standalone validator for wfa.bench files: CI runs it over the recorded
   BENCH_*.json artifacts and fails the build on invalid JSON or a record
   that does not match the documented schema (EXPERIMENTS.md).

   $ check_bench_json.exe BENCH_e1.json BENCH_e5.json ...                  *)

let errors = ref 0

let err path fmt =
  Fmt.kstr
    (fun msg ->
      incr errors;
      Fmt.epr "%s: %s@." path msg)
    fmt

let check_row path i row =
  match row with
  | Obs.Json.Obj fields ->
    (match List.assoc_opt "labels" fields with
    | Some (Obs.Json.Obj labels) ->
      if
        List.exists
          (fun (_, v) -> match v with Obs.Json.Str _ -> false | _ -> true)
          labels
      then err path "row %d: non-string label value" i
    | Some _ -> err path "row %d: labels is not an object" i
    | None -> err path "row %d: missing labels" i);
    (match List.assoc_opt "metrics" fields with
    | Some (Obs.Json.Obj _) -> ()
    | Some _ -> err path "row %d: metrics is not an object" i
    | None -> err path "row %d: missing metrics" i)
  | _ -> err path "row %d: not an object" i

let check path =
  let before = !errors in
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error e -> err path "unreadable: %s" e
  | contents -> (
    match Obs.Json.of_string contents with
    | Error e -> err path "invalid JSON: %s" e
    | Ok json ->
      let str field =
        Obs.Json.member field json |> Fun.flip Option.bind Obs.Json.to_string_opt
      in
      let int field =
        Obs.Json.member field json |> Fun.flip Option.bind Obs.Json.to_int_opt
      in
      if str "schema" <> Some Obs.Bench_record.schema_name then
        err path "schema is not %S" Obs.Bench_record.schema_name;
      (match int "version" with
      | Some v when v >= 1 && v <= Obs.Bench_record.schema_version -> ()
      | Some v -> err path "unsupported version %d" v
      | None -> err path "missing version");
      (match str "id" with
      | Some id when id <> "" -> ()
      | _ -> err path "missing or empty id");
      (match Obs.Json.member "rows" json with
      | Some (Obs.Json.List rows) -> List.iteri (check_row path) rows
      | Some _ -> err path "rows is not a list"
      | None -> err path "missing rows");
      if !errors = before then Fmt.pr "%s: ok@." path)

let () =
  let paths = List.tl (Array.to_list Sys.argv) in
  if paths = [] then begin
    Fmt.epr "usage: check_bench_json FILE.json ...@.";
    exit 2
  end;
  List.iter check paths;
  exit (if !errors > 0 then 1 else 0)
