(* Standalone validator for wfa.bench files: CI runs it over the recorded
   BENCH_*.json artifacts and fails the build on invalid JSON or a record
   that does not match the documented schema (EXPERIMENTS.md).

   $ check_bench_json.exe BENCH_e1.json BENCH_e5.json ...

   With --baseline DIR, each FILE is additionally compared against
   DIR/basename(FILE): rows are matched by their full label set, and any
   throughput metric (name ending in "_per_s") that dropped below
   baseline / tolerance — or latency metric (name ending in "_latency_s")
   that rose above baseline * tolerance — fails the check (--tolerance F,
   default 3). Rows
   or metrics present on only one side are ignored — the gate catches
   regressions, not schema drift (the schema check above does that). The
   comparison itself is Obs.Bench_record.baseline_regressions, unit-tested
   in test_obs.

   $ check_bench_json.exe --baseline baseline/ --tolerance 2.5 BENCH_e1.json ... *)

let errors = ref 0

let err path fmt =
  Fmt.kstr
    (fun msg ->
      incr errors;
      Fmt.epr "%s: %s@." path msg)
    fmt

let check_row path i row =
  match row with
  | Obs.Json.Obj fields ->
    (match List.assoc_opt "labels" fields with
    | Some (Obs.Json.Obj labels) ->
      if
        List.exists
          (fun (_, v) -> match v with Obs.Json.Str _ -> false | _ -> true)
          labels
      then err path "row %d: non-string label value" i
    | Some _ -> err path "row %d: labels is not an object" i
    | None -> err path "row %d: missing labels" i);
    (match List.assoc_opt "metrics" fields with
    | Some (Obs.Json.Obj _) -> ()
    | Some _ -> err path "row %d: metrics is not an object" i
    | None -> err path "row %d: missing metrics" i)
  | _ -> err path "row %d: not an object" i

(* -- baseline regression gate ------------------------------------------- *)

let pp_key ppf key =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ",") (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.string))
    key

(* Fail when a throughput metric fell below baseline / tolerance or a
   latency metric rose above baseline * tolerance. *)
let compare_against_baseline ~tolerance path fresh base =
  let regressions, compared =
    Obs.Bench_record.baseline_regressions ~tolerance ~fresh ~base ()
  in
  List.iter
    (fun r ->
      err path "row %a: %s regressed >%gx: %g -> %g (limit %g)" pp_key
        r.Obs.Bench_record.reg_key r.Obs.Bench_record.reg_metric tolerance
        r.Obs.Bench_record.reg_base r.Obs.Bench_record.reg_fresh
        r.Obs.Bench_record.reg_limit)
    regressions;
  compared

let read_json path =
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error e ->
    err path "unreadable: %s" e;
    None
  | contents -> (
    match Obs.Json.of_string contents with
    | Error e ->
      err path "invalid JSON: %s" e;
      None
    | Ok json -> Some json)

let check_baseline ~tolerance dir path json =
  let base_path = Filename.concat dir (Filename.basename path) in
  if not (Sys.file_exists base_path) then
    Fmt.pr "%s: no baseline %s, skipping gate@." path base_path
  else
    match read_json base_path with
    | None -> ()
    | Some base ->
      let before = !errors in
      let compared = compare_against_baseline ~tolerance path json base in
      if !errors = before then
        Fmt.pr "%s: baseline ok (%d gated metrics within %gx of %s)@." path
          compared tolerance base_path

let check ?baseline ~tolerance path =
  let before = !errors in
  match read_json path with
  | None -> ()
  | Some json ->
      let str field =
        Obs.Json.member field json |> Fun.flip Option.bind Obs.Json.to_string_opt
      in
      let int field =
        Obs.Json.member field json |> Fun.flip Option.bind Obs.Json.to_int_opt
      in
      if str "schema" <> Some Obs.Bench_record.schema_name then
        err path "schema is not %S" Obs.Bench_record.schema_name;
      (match int "version" with
      | Some v when v >= 1 && v <= Obs.Bench_record.schema_version -> ()
      | Some v -> err path "unsupported version %d" v
      | None -> err path "missing version");
      (match str "id" with
      | Some id when id <> "" -> ()
      | _ -> err path "missing or empty id");
      (match Obs.Json.member "rows" json with
      | Some (Obs.Json.List rows) -> List.iteri (check_row path) rows
      | Some _ -> err path "rows is not a list"
      | None -> err path "missing rows");
      if !errors = before then Fmt.pr "%s: ok@." path;
      Option.iter (fun dir -> check_baseline ~tolerance dir path json) baseline

let usage () =
  Fmt.epr
    "usage: check_bench_json [--baseline DIR] [--tolerance F] FILE.json ...@.";
  exit 2

let () =
  let rec parse baseline tolerance = function
    | "--baseline" :: dir :: rest -> parse (Some dir) tolerance rest
    | "--tolerance" :: f :: rest -> (
      match float_of_string_opt f with
      | Some t when t >= 1. -> parse baseline t rest
      | _ ->
        Fmt.epr "--tolerance: expected a number >= 1, got %S@." f;
        exit 2)
    | ("--baseline" | "--tolerance") :: [] -> usage ()
    | paths -> (baseline, tolerance, paths)
  in
  let baseline, tolerance, paths =
    parse None 3. (List.tl (Array.to_list Sys.argv))
  in
  if paths = [] then usage ();
  List.iter (check ?baseline ~tolerance) paths;
  exit (if !errors > 0 then 1 else 0)
