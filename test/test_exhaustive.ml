(* Model-checking the agreement primitives: every schedule up to a depth,
   not just sampled ones. *)

open Simkit
open Bglib

let check_bool = Alcotest.(check bool)

let mk ~n_c mem c_code =
  Runtime.create
    {
      Runtime.n_c;
      n_s = 1;
      memory = mem;
      pattern = Failure.failure_free 1;
      history = History.trivial;
      record_trace = false;
    }
    ~c_code
    ~s_code:(fun _ () -> ())

(* --- safe agreement: agreement + validity over ALL schedules --- *)

let test_safe_agreement_exhaustive () =
  let build () =
    let mem = Memory.create () in
    let sa = Safe_agreement.create mem ~n:2 in
    let c_code i () =
      Safe_agreement.propose sa ~me:i (Value.int (100 + i));
      let rec resolve () =
        match Safe_agreement.try_resolve sa with
        | Some v -> Runtime.Op.decide v
        | None -> resolve ()
      in
      resolve ()
    in
    mk ~n_c:2 mem c_code
  in
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b ->
      Value.equal a b && (Value.to_int a = 100 || Value.to_int a = 101)
    | Some a, None | None, Some a ->
      let x = Value.to_int a in
      x = 100 || x = 101
    | None, None -> true
  in
  match
    Exhaustive.check ~build ~pids:[ Pid.c 0; Pid.c 1 ] ~depth:11 ~prop
  with
  | Exhaustive.Ok n -> check_bool "schedules checked" true (n > 1000)
  | Exhaustive.Counterexample cex ->
    Alcotest.failf "safe agreement violated by %a"
      Fmt.(list ~sep:(any " ") Simkit.Pid.pp)
      cex

(* --- commit-adopt: if anyone commits, everyone's value matches --- *)

let test_commit_adopt_exhaustive () =
  let outcomes = Array.make 2 None in
  let build () =
    outcomes.(0) <- None;
    outcomes.(1) <- None;
    let mem = Memory.create () in
    let ca = Commit_adopt.create mem ~n:2 in
    let c_code i () =
      let o = Commit_adopt.run ca ~me:i (Value.int i) in
      outcomes.(i) <- Some o;
      Runtime.Op.decide (Commit_adopt.outcome_value o)
    in
    mk ~n_c:2 mem c_code
  in
  let prop _rt =
    match (outcomes.(0), outcomes.(1)) with
    | Some o1, Some o2 ->
      let committed =
        List.filter_map
          (function Commit_adopt.Commit v -> Some v | _ -> None)
          [ o1; o2 ]
      in
      List.for_all
        (fun c ->
          Value.equal c (Commit_adopt.outcome_value o1)
          && Value.equal c (Commit_adopt.outcome_value o2))
        committed
    | _ -> true
  in
  match
    Exhaustive.check_final ~build ~pids:[ Pid.c 0; Pid.c 1 ] ~depth:12 ~prop
  with
  | Exhaustive.Ok n -> check_bool "schedules checked" true (n > 1000)
  | Exhaustive.Counterexample cex ->
    Alcotest.failf "commit-adopt violated by %a"
      Fmt.(list ~sep:(any " ") Simkit.Pid.pp)
      cex

(* --- adoption set agreement: 2 deciders, 2-SA trivially; with 3 procs at
       full concurrency k=3 values allowed, but never a non-input --- *)

let test_adoption_validity_exhaustive () =
  let build () =
    let mem = Memory.create () in
    let input_regs = Memory.alloc mem 3 in
    let ctx = { Efd.Algorithm.mem; n_c = 3; n_s = 1; input_regs } in
    let inst = (Efd.Kconc_tasks.adoption ()).Efd.Algorithm.make ctx in
    let c_code i () =
      Runtime.Op.write input_regs.(i) (Value.int i);
      inst.Efd.Algorithm.c_run i (Value.int i)
    in
    mk ~n_c:3 mem c_code
  in
  let prop rt =
    List.for_all
      (fun i ->
        match Runtime.decision rt i with
        | None -> true
        | Some v ->
          let x = Value.to_int v in
          x >= 0 && x < 3)
      [ 0; 1; 2 ]
  in
  match
    Exhaustive.check ~build ~pids:[ Pid.c 0; Pid.c 1; Pid.c 2 ] ~depth:8 ~prop
  with
  | Exhaustive.Ok n -> check_bool "schedules checked" true (n > 5000)
  | Exhaustive.Counterexample cex ->
    Alcotest.failf "adoption validity violated by %a"
      Fmt.(list ~sep:(any " ") Simkit.Pid.pp)
      cex

(* --- the checker finds real bugs: a deliberately broken mutex-ish
       algorithm (decide your register's final value; races lose) --- *)

let test_exhaustive_finds_violations () =
  let build () =
    let mem = Memory.create () in
    let r = Memory.alloc1 mem () in
    let c_code i () =
      Runtime.Op.write r (Value.int i);
      (* unsafe read-back: both processes can decide they "own" r *)
      let v = Runtime.Op.read r in
      Runtime.Op.decide v
    in
    mk ~n_c:2 mem c_code
  in
  (* claim (falsely) that the two decisions always differ *)
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b -> not (Value.equal a b)
    | _ -> true
  in
  match Exhaustive.check ~build ~pids:[ Pid.c 0; Pid.c 1 ] ~depth:6 ~prop with
  | Exhaustive.Ok _ -> Alcotest.fail "expected a counterexample"
  | Exhaustive.Counterexample cex ->
    check_bool "counterexample found" true (List.length cex <= 6)

(* --- splitter: at most one Stop, over all schedules of 3 entrants --- *)

let test_splitter_exhaustive () =
  let outcomes = Array.make 3 None in
  let build () =
    Array.fill outcomes 0 3 None;
    let mem = Memory.create () in
    let sp = Efd.Splitter.create mem in
    let c_code i () =
      outcomes.(i) <- Some (Efd.Splitter.enter sp ~me:i);
      Runtime.Op.decide Value.unit
    in
    mk ~n_c:3 mem c_code
  in
  let prop _rt =
    let stops =
      Array.to_list outcomes
      |> List.filter (fun o -> o = Some Efd.Splitter.Stop)
    in
    List.length stops <= 1
  in
  match
    Exhaustive.check ~build ~pids:[ Pid.c 0; Pid.c 1; Pid.c 2 ] ~depth:9 ~prop
  with
  | Exhaustive.Ok n -> check_bool "schedules checked" true (n > 10_000)
  | Exhaustive.Counterexample cex ->
    Alcotest.failf "splitter violated by %a"
      Fmt.(list ~sep:(any " ") Simkit.Pid.pp)
      cex

(* --- differential: incremental engine (+/- memo, +/- domains) must agree
       with the replay-from-scratch baseline, verdict and count alike --- *)

let mk_ns ~n_c ~n_s mem c_code =
  Runtime.create
    {
      Runtime.n_c;
      n_s;
      memory = mem;
      pattern = Failure.failure_free (max 1 n_s);
      history = History.trivial;
      record_trace = false;
    }
    ~c_code
    ~s_code:(fun _ () -> ())

let race_build ~n_c ~n_s () =
  let mem = Memory.create () in
  let r = Memory.alloc1 mem () in
  let c_code i () =
    Runtime.Op.write r (Value.int i);
    let v = Runtime.Op.read r in
    Runtime.Op.decide v
  in
  mk_ns ~n_c ~n_s mem c_code

let race_prop_valid ~n_c rt =
  List.for_all
    (fun i ->
      match Runtime.decision rt i with
      | None -> true
      | Some v -> Value.to_int v >= 0 && Value.to_int v < n_c)
    (List.init n_c Fun.id)

(* the deliberately false claim: the two decisions always differ *)
let race_prop_false rt =
  match (Runtime.decision rt 0, Runtime.decision rt 1) with
  | Some a, Some b -> not (Value.equal a b)
  | _ -> true

let verdict_str = function
  | Exhaustive.Ok n -> Fmt.str "Ok %d" n
  | Exhaustive.Counterexample cex ->
    Fmt.str "Counterexample [%a]" Fmt.(list ~sep:(any " ") Pid.pp) cex

let test_engines_agree () =
  List.iter
    (fun (n_c, n_s, depth) ->
      List.iter
        (fun mode ->
          let build = race_build ~n_c ~n_s in
          let prop = race_prop_valid ~n_c in
          let pids = Pid.all ~n_c ~n_s in
          let label =
            Fmt.str "n_c=%d n_s=%d depth=%d %s" n_c n_s depth
              (match mode with Exhaustive.Every -> "every" | Final -> "final")
          in
          let oracle, _ = Exhaustive.run_replay ~mode ~build ~pids ~depth ~prop () in
          List.iter
            (fun (variant, memo) ->
              let v, _ = Exhaustive.run ~memo ~mode ~build ~pids ~depth ~prop () in
              Alcotest.(check string)
                (label ^ " " ^ variant)
                (verdict_str oracle) (verdict_str v))
            [ ("incremental", false); ("incremental+memo", true) ])
        [ Exhaustive.Every; Exhaustive.Final ])
    [ (2, 1, 6); (3, 1, 5); (2, 2, 4); (3, 2, 4) ]

let test_engines_agree_on_violation () =
  let build = race_build ~n_c:2 ~n_s:1 in
  let pids = Pid.all_c 2 in
  let oracle, _ =
    Exhaustive.run_replay ~build ~pids ~depth:6 ~prop:race_prop_false ()
  in
  List.iter
    (fun memo ->
      let v, _ =
        Exhaustive.run ~memo ~build ~pids ~depth:6 ~prop:race_prop_false ()
      in
      Alcotest.(check string) "same counterexample" (verdict_str oracle)
        (verdict_str v))
    [ false; true ]

let test_parallel_engine_agrees () =
  let build = race_build ~n_c:3 ~n_s:1 in
  let pids = Pid.all ~n_c:3 ~n_s:1 in
  let prop = race_prop_valid ~n_c:3 in
  let seq, _ = Exhaustive.run ~build ~pids ~depth:6 ~prop () in
  let par, _ = Exhaustive.run ~domains:4 ~build ~pids ~depth:6 ~prop () in
  Alcotest.(check string) "sharded count = sequential count" (verdict_str seq)
    (verdict_str par);
  (* violation case: any domain's counterexample must be genuine *)
  match
    Exhaustive.run ~domains:4 ~build:(race_build ~n_c:2 ~n_s:1)
      ~pids:(Pid.all_c 2) ~depth:6 ~prop:race_prop_false ()
  with
  | Exhaustive.Ok _, _ -> Alcotest.fail "expected a counterexample"
  | Exhaustive.Counterexample cex, _ ->
    check_bool "parallel counterexample reproduces the violation" false
      (Exhaustive.replay_ok ~build:(race_build ~n_c:2 ~n_s:1)
         ~prop:race_prop_false cex)

(* --- determinism: a reported counterexample replays to the same violation,
       and re-running the checker reports the same schedule --- *)

let test_counterexample_replays () =
  let build = race_build ~n_c:2 ~n_s:1 in
  let pids = Pid.all_c 2 in
  match Exhaustive.run ~build ~pids ~depth:6 ~prop:race_prop_false () with
  | Exhaustive.Ok _, _ -> Alcotest.fail "expected a counterexample"
  | Exhaustive.Counterexample cex, _ ->
    check_bool "replaying the counterexample violates the property" false
      (Exhaustive.replay_ok ~build ~prop:race_prop_false cex);
    (match Exhaustive.run ~build ~pids ~depth:6 ~prop:race_prop_false () with
    | Exhaustive.Counterexample cex', _ ->
      Alcotest.(check string) "second run reports the same schedule"
        (verdict_str (Exhaustive.Counterexample cex))
        (verdict_str (Exhaustive.Counterexample cex'))
    | Exhaustive.Ok _, _ -> Alcotest.fail "second run found no counterexample")

(* --- the acceptance bar: on the fixed seed config (n_c=2, n_s=2, depth 8,
       every mode) the incremental engine executes >= 3x fewer steps than the
       replay baseline, at identical verdict and schedule count --- *)

let test_incremental_speedup () =
  let build () =
    let mem = Memory.create () in
    let sa = Safe_agreement.create mem ~n:2 in
    let c_code i () =
      Safe_agreement.propose sa ~me:i (Value.int (100 + i));
      let rec resolve () =
        match Safe_agreement.try_resolve sa with
        | Some v -> Runtime.Op.decide v
        | None -> resolve ()
      in
      resolve ()
    in
    mk_ns ~n_c:2 ~n_s:2 mem c_code
  in
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b -> Value.equal a b
    | _ -> true
  in
  let pids = Pid.all ~n_c:2 ~n_s:2 in
  let base_v, base_st = Exhaustive.run_replay ~build ~pids ~depth:8 ~prop () in
  let inc_v, inc_st = Exhaustive.run ~build ~pids ~depth:8 ~prop () in
  Alcotest.(check string) "identical verdict and count" (verdict_str base_v)
    (verdict_str inc_v);
  check_bool
    (Fmt.str "steps %d >= 3x steps %d" base_st.Exhaustive.steps_executed
       inc_st.Exhaustive.steps_executed)
    true
    (base_st.Exhaustive.steps_executed
    >= 3 * inc_st.Exhaustive.steps_executed);
  check_bool "memo observed hits" true (inc_st.Exhaustive.memo_hits > 0)

(* --- and the same bar for the reduction layers: on the same config,
       sleep sets + symmetry must execute >= 3x fewer steps than the
       memoized engine they sit on, at identical verdict and count --- *)

let test_reduction_speedup () =
  let build () =
    let mem = Memory.create () in
    let sa = Safe_agreement.create mem ~n:2 in
    let c_code i () =
      Safe_agreement.propose sa ~me:i (Value.int (100 + i));
      let rec resolve () =
        match Safe_agreement.try_resolve sa with
        | Some v -> Runtime.Op.decide v
        | None -> resolve ()
      in
      resolve ()
    in
    mk_ns ~n_c:2 ~n_s:2 mem c_code
  in
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b -> Value.equal a b
    | _ -> true
  in
  let pids = Pid.all ~n_c:2 ~n_s:2 in
  let memo_v, memo_st = Exhaustive.run ~build ~pids ~depth:8 ~prop () in
  let red_v, red_st =
    Exhaustive.run
      ~reduce:{ Exhaustive.sleep = true; symmetry = [ Pid.all_s 2 ] }
      ~build ~pids ~depth:8 ~prop ()
  in
  Alcotest.(check string) "identical verdict and count" (verdict_str memo_v)
    (verdict_str red_v);
  check_bool
    (Fmt.str "steps %d >= 3x steps %d" memo_st.Exhaustive.steps_executed
       red_st.Exhaustive.steps_executed)
    true
    (memo_st.Exhaustive.steps_executed
    >= 3 * red_st.Exhaustive.steps_executed);
  check_bool "sleep pruning observed" true
    (red_st.Exhaustive.sleep_pruned > 0);
  check_bool "orbit collapsing observed" true
    (red_st.Exhaustive.orbits_collapsed > 0)

let suite =
  [
    Alcotest.test_case "safe agreement (all schedules)" `Slow
      test_safe_agreement_exhaustive;
    Alcotest.test_case "commit-adopt (all schedules)" `Slow
      test_commit_adopt_exhaustive;
    Alcotest.test_case "adoption validity (all schedules)" `Slow
      test_adoption_validity_exhaustive;
    Alcotest.test_case "checker finds violations" `Quick
      test_exhaustive_finds_violations;
    Alcotest.test_case "splitter (all schedules)" `Slow test_splitter_exhaustive;
    Alcotest.test_case "engines agree (differential grid)" `Quick
      test_engines_agree;
    Alcotest.test_case "engines agree on violations" `Quick
      test_engines_agree_on_violation;
    Alcotest.test_case "parallel sharding agrees" `Quick
      test_parallel_engine_agrees;
    Alcotest.test_case "counterexamples replay deterministically" `Quick
      test_counterexample_replays;
    Alcotest.test_case "incremental engine >= 3x fewer steps" `Quick
      test_incremental_speedup;
    Alcotest.test_case "reduction >= 3x fewer steps than memo" `Quick
      test_reduction_speedup;
  ]
