(* Scenario specs and campaigns as data: golden byte-identity against the
   committed files, exact strict-parse diagnostics, qcheck round-trip of
   the JSON form, campaign expansion, the campaign runner's outcome
   classes, and a differential check that a data-form scenario produces
   field-for-field the same modelcheck result as the compiled-in name. *)

module J = Obs.Json
module Spec = Scenario.Spec
module Campaign = Scenario.Campaign
module P = Svc.Protocol

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let golden f = Filename.concat "golden/scenarios" f

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* --------------------------------------------------------------- golden *)

let valid_goldens =
  [
    "mc_safe_agreement.json";
    "mc_race_false.json";
    "solve_consensus_omega.json";
    "solve_ksa_crashes.json";
    "solve_consensus_trivial_undecided.json";
    "fuzz_strong_renaming.json";
  ]

(* the committed files are canonical bytes: parse then re-print is the
   identity on the file itself, so any drift in the printer (or a
   hand-edit that is not canonical) fails here *)
let test_golden_byte_identity () =
  List.iter
    (fun f ->
      let bytes = read_file (golden f) in
      match Spec.of_string bytes with
      | Error msg -> Alcotest.failf "%s: %s" f msg
      | Ok sp -> check_string f bytes (Spec.to_string sp))
    valid_goldens

let test_golden_malformed () =
  let path = golden "malformed_unknown_scenario.json" in
  match Spec.load path with
  | Ok _ -> Alcotest.fail "malformed golden parsed"
  | Error msg ->
    check_string "error lists path and valid names"
      (path
     ^ ": $.params.scenario: unknown scenario \"typo\" \
        (safe-agreement|race-false)")
      msg

let test_load_missing_file () =
  match Spec.load "golden/scenarios/no-such-file.json" with
  | Ok _ -> Alcotest.fail "missing file parsed"
  | Error msg ->
    check_bool "error names the file" true
      (String.length msg > 0
      && String.sub msg 0 String.(length "golden/scenarios/no-such-file")
         = "golden/scenarios/no-such-file")

(* ---------------------------------------------------------- strictness *)

let parse s = Spec.of_string s

let expect_error what needle s =
  match parse s with
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error msg ->
    let contains hay needle =
      let lh = String.length hay and ln = String.length needle in
      let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
      go 0
    in
    check_bool (what ^ ": " ^ msg) true (contains msg needle)

let test_strict_parse_errors () =
  expect_error "unknown top field" "$: unknown field \"extra\""
    {|{"v":1,"name":"a","verb":"solve","params":{},"extra":1,
       "expect":{"outcome":"solves"}}|};
  expect_error "unknown param" "$.params: unknown field \"depht\""
    {|{"v":1,"name":"a","verb":"modelcheck","params":{"depht":4},
       "expect":{"outcome":"safe"}}|};
  expect_error "unknown task lists names"
    "$.params.task: unknown task \"paxos\""
    {|{"v":1,"name":"a","verb":"solve","params":{"task":"paxos"},
       "expect":{"outcome":"solves"}}|};
  expect_error "depth bounded" "$.params.depth: 1000 out of range"
    {|{"v":1,"name":"a","verb":"modelcheck","params":{"depth":1000},
       "expect":{"outcome":"safe"}}|};
  expect_error "crash index ranged"
    "$.params.crashes[0]: crash index 9 out of range"
    {|{"v":1,"name":"a","verb":"solve","params":{"n":3,"crashes":[[9,0]]},
       "expect":{"outcome":"solves"}}|};
  expect_error "expect vocabulary is per verb"
    "outcome \"safe\" does not apply to solve"
    {|{"v":1,"name":"a","verb":"solve","params":{},
       "expect":{"outcome":"safe"}}|};
  expect_error "violation kinds only for solve"
    "$.expect.kind: violation kinds only apply to solve"
    {|{"v":1,"name":"a","verb":"modelcheck","params":{},
       "expect":{"outcome":"violation","kind":"undecided"}}|};
  expect_error "bad name charset" "$.name: invalid name"
    {|{"v":1,"name":"sp ace","verb":"solve","params":{},
       "expect":{"outcome":"solves"}}|};
  expect_error "unknown error code lists codes"
    "$.expect.code: unknown error code \"nope\""
    {|{"v":1,"name":"a","verb":"solve","params":{},
       "expect":{"outcome":"error","code":"nope"}}|}

(* Omitted [expect] is derived from the registry classification; the
   ambiguous cases must refuse rather than guess. *)
let test_derived_expect () =
  let derived what s expect =
    match parse s with
    | Error msg -> Alcotest.failf "%s: %s" what msg
    | Ok sp ->
      Alcotest.check Alcotest.string what
        (Spec.expect_string expect)
        (Spec.expect_string sp.Spec.sp_expect)
  in
  derived "modelcheck safe scenario"
    {|{"v":1,"name":"a","verb":"modelcheck","params":{}}|} Spec.Safe;
  derived "modelcheck seeded violation"
    {|{"v":1,"name":"a","verb":"modelcheck",
       "params":{"scenario":"race-false"}}|}
    (Spec.Violation None);
  derived "advice makes consensus live"
    {|{"v":1,"name":"a","verb":"solve","params":{"task":"consensus"}}|}
    Spec.Solves;
  derived "no advice, full concurrency: fails"
    {|{"v":1,"name":"a","verb":"solve",
       "params":{"task":"consensus","fd":"trivial"}}|}
    (Spec.Violation None);
  derived "1-concurrency solves strong renaming with any fd"
    {|{"v":1,"name":"a","verb":"solve",
       "params":{"task":"renaming","policy":"kconc:1","fd":"trivial",
                 "n":3,"j":2}}|}
    Spec.Solves;
  derived "identity is wait-free at level n"
    {|{"v":1,"name":"a","verb":"solve",
       "params":{"task":"identity","fd":"trivial"}}|}
    Spec.Solves;
  expect_error "fuzz refuses derivation" "declare \"expect\""
    {|{"v":1,"name":"a","verb":"fuzz","params":{}}|};
  expect_error "At_least classification above its level refuses"
    "cannot derive an expectation for concurrency"
    {|{"v":1,"name":"a","verb":"solve",
       "params":{"task":"wsb","fd":"trivial","n":4,"j":3}}|};
  (* explicit expect still overrides the derivation *)
  derived "explicit override wins"
    {|{"v":1,"name":"a","verb":"solve","params":{"task":"consensus"},
       "expect":{"outcome":"violation","kind":"undecided"}}|}
    (Spec.Violation (Some "undecided"))

(* ------------------------------------------------------ qcheck roundtrip *)

let name_gen =
  let chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ\
               0123456789._/=,:+-" in
  let char_gen =
    QCheck.Gen.map (String.get chars)
      (QCheck.Gen.int_range 0 (String.length chars - 1))
  in
  QCheck.Gen.(string_size ~gen:char_gen (int_range 1 40))

let expect_gen ~verb =
  let open QCheck.Gen in
  let err =
    map
      (fun c -> Spec.Err c)
      (oneofl
         [ "bad_request"; "overloaded"; "deadline_exceeded"; "internal" ])
  in
  if verb = "solve" then
    oneof
      [
        return Spec.Solves;
        map
          (fun k -> Spec.Violation k)
          (oneofl
             [
               None; Some "task_violation"; Some "undecided";
               Some "not_wait_free";
             ]);
        err;
      ]
  else oneof [ return Spec.Safe; return (Spec.Violation None); err ]

let solve_gen =
  let open QCheck.Gen in
  oneofl (List.map snd Scenario.Build.task_assoc) >>= fun sv_task ->
  oneofl (List.map snd Scenario.Build.fd_assoc) >>= fun sv_fd ->
  oneofl
    [ Scenario.Build.Fair; Scenario.Build.Kconc 2; Scenario.Build.Uniform 3 ]
  >>= fun sv_policy ->
  int_range 1 16 >>= fun sv_n ->
  int_range 1 4 >>= fun sv_k ->
  int_range 1 8 >>= fun sv_j ->
  opt (int_range 1 32) >>= fun sv_l ->
  list_size (int_range 0 3)
    (pair (int_range 0 (sv_n - 1)) (int_range 0 1000))
  >>= fun sv_crashes ->
  int_range 0 1_000_000 >>= fun sv_seed ->
  int_range 1 1_000_000 >>= fun sv_budget ->
  return
    (Spec.Solve
       {
         Spec.sv_task; sv_fd; sv_policy; sv_n; sv_k; sv_j; sv_l; sv_crashes;
         sv_seed; sv_budget;
       })

let modelcheck_gen =
  let open QCheck.Gen in
  oneofl Mcheck.Scenario.names >>= fun mc_scenario ->
  int_range 1 8 >>= fun mc_n_s ->
  int_range 1 16 >>= fun mc_depth ->
  bool >>= fun mc_reduce ->
  return (Spec.Modelcheck { Spec.mc_scenario; mc_n_s; mc_depth; mc_reduce })

let fuzz_gen =
  let open QCheck.Gen in
  oneofl Scenario.Build.fuzz_kinds >>= fun fz_kind ->
  int_range 1 8 >>= fun fz_n ->
  int_range 1 8 >>= fun fz_j ->
  int_range 0 10_000 >>= fun fz_seed ->
  int_range 1 10_000 >>= fun fz_budget ->
  int_range 1 8 >>= fun fz_domains ->
  return
    (Spec.Fuzz { Spec.fz_kind; fz_n; fz_j; fz_seed; fz_budget; fz_domains })

let spec_gen =
  let open QCheck.Gen in
  name_gen >>= fun sp_name ->
  oneof [ solve_gen; modelcheck_gen; fuzz_gen ] >>= fun sp_work ->
  opt (int_range 1 100_000) >>= fun sp_deadline_ms ->
  expect_gen
    ~verb:
      (match sp_work with
      | Spec.Solve _ -> "solve"
      | Spec.Modelcheck _ -> "modelcheck"
      | Spec.Fuzz _ -> "fuzz")
  >>= fun sp_expect ->
  return { Spec.sp_name; sp_work; sp_deadline_ms; sp_expect }

let spec_arbitrary =
  QCheck.make ~print:Spec.to_string spec_gen

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse (print spec) = spec"
    spec_arbitrary (fun sp ->
      match Spec.of_string (Spec.to_string sp) with
      | Error msg -> QCheck.Test.fail_reportf "re-parse failed: %s" msg
      | Ok sp' -> Spec.equal sp sp')

let prop_print_fixpoint =
  QCheck.Test.make ~count:300 ~name:"print is a fixpoint of parse∘print"
    spec_arbitrary (fun sp ->
      let s = Spec.to_string sp in
      match Spec.of_string s with
      | Error msg -> QCheck.Test.fail_reportf "re-parse failed: %s" msg
      | Ok sp' -> String.equal s (Spec.to_string sp'))

(* ------------------------------------------------------------- campaign *)

let campaign_json =
  {|{ "v": 1, "name": "t",
      "groups": [
        { "name": "mc/safe",
          "template": { "verb": "modelcheck",
                        "params": { "scenario": "safe-agreement" },
                        "expect": { "outcome": "safe" } },
          "axes": [ { "field": "params.depth", "values": [4, 6] },
                    { "field": "params.reduce", "values": [false, true] } ] },
        { "name": "solo",
          "template": { "verb": "solve", "params": { "n": 3 },
                        "expect": { "outcome": "solves" } } } ] }|}

let test_campaign_expand () =
  match Campaign.of_string campaign_json with
  | Error msg -> Alcotest.failf "campaign: %s" msg
  | Ok c -> (
    match Campaign.expand c with
    | Error msg -> Alcotest.failf "expand: %s" msg
    | Ok specs ->
      check_int "cells" 5 (List.length specs);
      (* rightmost axis varies fastest; a no-axis group is one cell named
         after the group itself *)
      Alcotest.(check (list string))
        "generated names"
        [
          "mc/safe:depth=4,reduce=false"; "mc/safe:depth=4,reduce=true";
          "mc/safe:depth=6,reduce=false"; "mc/safe:depth=6,reduce=true";
          "solo";
        ]
        (List.map (fun sp -> sp.Spec.sp_name) specs);
      Alcotest.(check (list string))
        "groups" [ "mc/safe"; "solo" ]
        (List.sort_uniq compare (List.map Campaign.group_of specs));
      (* the axis really landed in the params *)
      let depths =
        List.filter_map
          (fun sp ->
            match sp.Spec.sp_work with
            | Spec.Modelcheck m -> Some m.Spec.mc_depth
            | _ -> None)
          specs
      in
      Alcotest.(check (list int)) "depths" [ 4; 4; 6; 6 ] depths)

let test_campaign_bad_cell () =
  let j =
    {|{ "v": 1, "name": "t",
        "groups": [
          { "name": "g",
            "template": { "verb": "modelcheck", "params": {},
                          "expect": { "outcome": "safe" } },
            "axes": [ { "field": "params.scenario",
                        "values": ["safe-agreement", "typo"] } ] } ] }|}
  in
  match Campaign.of_string j with
  | Error msg -> Alcotest.failf "campaign: %s" msg
  | Ok c -> (
    match Campaign.expand c with
    | Ok _ -> Alcotest.fail "bad cell expanded"
    | Error msg ->
      check_string "cell error carries generated name and path"
        "$.groups[0] (cell g:scenario=typo).params.scenario: unknown \
         scenario \"typo\" (safe-agreement|race-false)"
        msg)

let test_campaign_duplicate_names () =
  let j =
    {|{ "v": 1, "name": "t",
        "groups": [
          { "name": "g", "template": { "verb": "modelcheck", "params": {},
                                       "expect": { "outcome": "safe" } } },
          { "name": "g", "template": { "verb": "modelcheck", "params": {},
                                       "expect": { "outcome": "safe" } } } ] }|}
  in
  match Campaign.of_string j with
  | Error msg -> Alcotest.failf "campaign: %s" msg
  | Ok c -> (
    match Campaign.expand c with
    | Ok _ -> Alcotest.fail "duplicate names expanded"
    | Error msg ->
      check_string "duplicate" "$: duplicate scenario name \"g\"" msg)

(* --------------------------------------------------------- local runner *)

let mc_spec ?deadline_ms ?(expect = Spec.Safe) ~name ~depth () =
  {
    Spec.sp_name = name;
    sp_work =
      Spec.Modelcheck
        {
          Spec.mc_scenario = "safe-agreement"; mc_n_s = 1; mc_depth = depth;
          mc_reduce = false;
        };
    sp_deadline_ms = deadline_ms;
    sp_expect = expect;
  }

let test_run_local_outcomes () =
  let specs =
    [
      (* passes *)
      mc_spec ~name:"ok" ~depth:6 ();
      (* wrong expectation: runs fine, contradicts -> fail *)
      mc_spec ~name:"wrong" ~depth:6 ~expect:(Spec.Violation None) ();
      (* a 1 ms deadline on a deep check: timeout, not fail *)
      mc_spec ~name:"slow" ~depth:14 ~deadline_ms:1 ();
      (* the same deadline, but declared: an expected timeout passes *)
      mc_spec ~name:"slow-expected" ~depth:14 ~deadline_ms:1
        ~expect:(Spec.Err "deadline_exceeded") ();
    ]
  in
  let s = Svc.Campaign.run_local ~name:"outcomes" specs in
  let outcome name =
    let row =
      List.find (fun r -> r.Svc.Campaign.row_spec.Spec.sp_name = name) s.Svc.Campaign.s_rows
    in
    row.Svc.Campaign.row_outcome
  in
  check_bool "ok passes" true (outcome "ok" = Spec.Pass);
  check_bool "wrong expectation fails" true (outcome "wrong" = Spec.Fail);
  check_bool "deadline reports timeout" true (outcome "slow" = Spec.Timeout);
  check_bool "declared timeout passes" true
    (outcome "slow-expected" = Spec.Pass);
  check_int "pass" 2 s.Svc.Campaign.s_pass;
  check_int "fail" 1 s.Svc.Campaign.s_fail;
  check_int "timeout" 1 s.Svc.Campaign.s_timeout;
  check_int "error" 0 s.Svc.Campaign.s_error;
  check_bool "summary not ok" false (Svc.Campaign.ok s)

let test_record_shape () =
  let s =
    Svc.Campaign.run_local ~name:"rec"
      [ mc_spec ~name:"g1:a" ~depth:4 (); mc_spec ~name:"g2:b" ~depth:4 () ]
  in
  let r = Svc.Campaign.record s in
  match Obs.Bench_record.to_json r with
  | J.Obj kvs -> (
    check_bool "schema" true
      (List.assoc_opt "schema" kvs = Some (J.Str "wfa.bench"));
    check_bool "id" true (List.assoc_opt "id" kvs = Some (J.Str "campaign"));
    match List.assoc_opt "rows" kvs with
    | Some (J.List rows) ->
      (* one row per group plus the total row *)
      check_int "rows" 3 (List.length rows)
    | _ -> Alcotest.fail "no rows")
  | _ -> Alcotest.fail "record not an object"

(* --------------------------------------------------------- differential *)

let with_server ~workers f =
  let cfg =
    {
      (Svc.Server.default_config ~listen:(Svc.Addr.Tcp ("127.0.0.1", 0))) with
      workers;
    }
  in
  let t = Svc.Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Svc.Server.shutdown t;
      Svc.Server.wait t)
    (fun () ->
      let c =
        Svc.Client.connect (Svc.Addr.to_string (Svc.Server.listen_addr t))
      in
      Fun.protect ~finally:(fun () -> Svc.Client.close c) (fun () -> f c))

(* wall_s is the only nondeterministic field in a modelcheck result *)
let rec scrub = function
  | J.Obj kvs ->
    J.Obj
      (List.map
         (fun (k, v) -> if k = "wall_s" then (k, J.Null) else (k, scrub v))
         kvs)
  | J.List vs -> J.List (List.map scrub vs)
  | v -> v

let test_differential ~workers () =
  with_server ~workers (fun c ->
      List.iter
        (fun (scen, expect) ->
          let params =
            J.Obj
              [
                ("scenario", J.Str scen); ("n_s", J.Int 1);
                ("depth", J.Int 8); ("reduce", J.Bool false);
              ]
          in
          let direct =
            match Svc.Client.call ~params c P.Modelcheck with
            | Ok j -> j
            | Error e -> Alcotest.failf "direct: %s" (Svc.Client.error_string e)
          in
          let spec =
            J.Obj
              [
                ("v", J.Int 1); ("name", J.Str ("diff/" ^ scen));
                ("verb", J.Str "modelcheck"); ("params", params);
                ("expect", J.Obj [ ("outcome", J.Str expect) ]);
              ]
          in
          let wrapped =
            match Svc.Client.call ~params:spec c P.Scenario with
            | Ok j -> j
            | Error e ->
              Alcotest.failf "scenario: %s" (Svc.Client.error_string e)
          in
          check_bool "echoes name" true
            (J.member "scenario" wrapped = Some (J.Str ("diff/" ^ scen)));
          check_bool "echoes verb" true
            (J.member "verb" wrapped = Some (J.Str "modelcheck"));
          match J.member "result" wrapped with
          | None -> Alcotest.fail "no result member"
          | Some inner ->
            (* field-for-field: same verdict, same credited schedule count,
               same stats — the data form runs the identical engine *)
            check_string
              (Printf.sprintf "%s @ %d workers" scen workers)
              (J.to_string (scrub direct))
              (J.to_string (scrub inner)))
        [ ("safe-agreement", "safe"); ("race-false", "violation") ])

(* the distributed leg: the same data-form scenarios, resolved through the
   registry exactly as the server resolves them, fanned out over a 2-worker
   TCP fleet via the coordinator must reproduce the local engine's verdict
   (and, for race-false, its lex-least counterexample — verdict_str prints
   it) bit-for-bit *)
let test_differential_distributed () =
  List.iter
    (fun (scen, expect) ->
      let spec_json =
        Printf.sprintf
          {|{"v": 1, "name": "diff/%s", "verb": "modelcheck",
             "params": {"scenario": "%s", "n_s": 1, "depth": 8,
                        "reduce": false},
             "expect": {"outcome": "%s"}}|}
          scen scen expect
      in
      let sp =
        match Spec.of_string spec_json with
        | Ok sp -> sp
        | Error e -> Alcotest.fail e
      in
      let m =
        match sp.Spec.sp_work with
        | Spec.Modelcheck m -> m
        | _ -> Alcotest.fail "not a modelcheck spec"
      in
      let sc =
        match Mcheck.Scenario.find m.Spec.mc_scenario ~n_s:m.Spec.mc_n_s with
        | Ok sc -> sc
        | Error e -> Alcotest.fail e
      in
      let local, _ =
        Simkit.Exhaustive.run
          ?reduce:(Mcheck.Scenario.reduction sc ~reduce:m.Spec.mc_reduce)
          ~build:sc.Mcheck.Scenario.sc_build ~pids:sc.Mcheck.Scenario.sc_pids
          ~depth:m.Spec.mc_depth ~prop:sc.Mcheck.Scenario.sc_prop ()
      in
      Test_dist.with_tcp_workers 2 (fun servers ->
          let workers = List.map snd servers in
          match
            Dist.Coordinator.run ~reduce:m.Spec.mc_reduce ~scenario:sc
              ~depth:m.Spec.mc_depth ~workers ()
          with
          | Error e -> Alcotest.failf "%s distributed: %s" scen e
          | Ok r ->
            check_string
              (Printf.sprintf "%s: data form distributed = local" scen)
              (Test_exhaustive.verdict_str local)
              (Test_exhaustive.verdict_str r.Dist.Coordinator.r_verdict)))
    [ ("safe-agreement", "safe"); ("race-false", "violation") ]

let suite =
  [
    Alcotest.test_case "golden byte identity" `Quick
      test_golden_byte_identity;
    Alcotest.test_case "golden malformed diagnostics" `Quick
      test_golden_malformed;
    Alcotest.test_case "load missing file" `Quick test_load_missing_file;
    Alcotest.test_case "strict parse errors" `Quick test_strict_parse_errors;
    Alcotest.test_case "derived expectations" `Quick test_derived_expect;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_print_fixpoint;
    Alcotest.test_case "campaign expand" `Quick test_campaign_expand;
    Alcotest.test_case "campaign bad cell" `Quick test_campaign_bad_cell;
    Alcotest.test_case "campaign duplicate names" `Quick
      test_campaign_duplicate_names;
    Alcotest.test_case "run_local outcome classes" `Quick
      test_run_local_outcomes;
    Alcotest.test_case "campaign bench record" `Quick test_record_shape;
    Alcotest.test_case "differential: data = name (1 worker)" `Quick
      (test_differential ~workers:1);
    Alcotest.test_case "differential: data = name (4 workers)" `Quick
      (test_differential ~workers:4);
    Alcotest.test_case "differential: data = name (distributed)" `Quick
      test_differential_distributed;
  ]
