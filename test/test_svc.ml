(* The service layer: framing, protocol codecs, the bounded queue, and
   in-process end-to-end runs of the job server — backpressure, deadlines,
   graceful drain, events and metrics. *)

module J = Obs.Json
module P = Svc.Protocol

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/wfa-test-%d-%d.sock" (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !n

(* ------------------------------------------------------------- framing *)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payloads = [ ""; "x"; String.make 100_000 'y'; "{\"v\":1}" ] in
  let writer = Thread.create (fun () -> List.iter (Svc.Frame.write a) payloads) () in
  List.iter
    (fun expect ->
      match Svc.Frame.read b with
      | Ok got -> check_string "payload" expect got
      | Error e -> Alcotest.failf "read: %s" (Svc.Frame.error_string e))
    payloads;
  Thread.join writer;
  Unix.close a;
  (match Svc.Frame.read b with
  | Error Svc.Frame.Eof -> ()
  | _ -> Alcotest.fail "expected Eof at clean boundary");
  Unix.close b

let test_frame_oversized_keeps_sync () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let big = String.make 100_000 'z' in
  let writer =
    Thread.create
      (fun () ->
        Svc.Frame.write a big;
        Svc.Frame.write a "next";
        Unix.close a)
      ()
  in
  (match Svc.Frame.read ~max_len:1024 b with
  | Error (Svc.Frame.Oversized n) -> check_int "announced length" 100_000 n
  | _ -> Alcotest.fail "expected Oversized");
  (* the oversized payload was discarded: the stream is still framed *)
  (match Svc.Frame.read ~max_len:1024 b with
  | Ok got -> check_string "next frame" "next" got
  | Error e -> Alcotest.failf "read after oversized: %s" (Svc.Frame.error_string e));
  Thread.join writer;
  Unix.close b

let test_frame_desynced () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* top bit set: announces a length no writer can produce, nothing to skip *)
  let hdr = Bytes.of_string "\x80\x00\x00\x01garbage" in
  ignore (Unix.write a hdr 0 (Bytes.length hdr));
  (match Svc.Frame.read b with
  | Error (Svc.Frame.Desynced n) ->
    check_bool "beyond wire limit" true (n > Svc.Frame.max_wire_len)
  | _ -> Alcotest.fail "expected Desynced");
  Unix.close a;
  Unix.close b

let test_frame_truncated () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* a header promising 100 bytes, then only 3, then EOF *)
  let hdr = Bytes.of_string "\x00\x00\x00\x64abc" in
  ignore (Unix.write a hdr 0 (Bytes.length hdr));
  Unix.close a;
  (match Svc.Frame.read b with
  | Error Svc.Frame.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  Unix.close b

(* ---------------------------------------------------- incremental decode *)

let pump_all d on_frame on_error =
  let rec go () =
    match Svc.Frame.next d with
    | Ok `Await -> ()
    | Ok (`Frame p) ->
      on_frame p;
      go ()
    | Error e ->
      on_error e;
      go ()
  in
  go ()

let test_decoder_incremental () =
  (* one byte at a time across three frame boundaries, including an empty
     payload: every frame must come out exactly once, in order *)
  let d = Svc.Frame.decoder () in
  let wire =
    Svc.Frame.encode "hello" ^ Svc.Frame.encode "" ^ Svc.Frame.encode "worlds"
  in
  let b = Bytes.of_string wire in
  let got = ref [] in
  for i = 0 to Bytes.length b - 1 do
    Svc.Frame.feed d b i 1;
    pump_all d
      (fun p -> got := p :: !got)
      (fun e -> Alcotest.failf "decode: %s" (Svc.Frame.error_string e))
  done;
  check_bool "byte-by-byte frames" true
    (List.rev !got = [ "hello"; ""; "worlds" ]);
  (* and the same frames in a single feed *)
  let d = Svc.Frame.decoder () in
  Svc.Frame.feed d b 0 (Bytes.length b);
  let got = ref [] in
  pump_all d
    (fun p -> got := p :: !got)
    (fun e -> Alcotest.failf "decode: %s" (Svc.Frame.error_string e));
  check_bool "single-feed frames" true
    (List.rev !got = [ "hello"; ""; "worlds" ])

let test_decoder_oversized_skip () =
  (* an oversized frame fed in small chunks is discarded without buffering,
     reported exactly once, and the stream stays framed for what follows *)
  let d = Svc.Frame.decoder ~max_len:8 () in
  let wire =
    Svc.Frame.encode (String.make 100_000 'z') ^ Svc.Frame.encode "next"
  in
  let b = Bytes.of_string wire in
  let oversized = ref 0 in
  let frames = ref [] in
  let i = ref 0 in
  while !i < Bytes.length b do
    let len = min 7 (Bytes.length b - !i) in
    Svc.Frame.feed d b !i len;
    i := !i + len;
    pump_all d
      (fun p -> frames := p :: !frames)
      (function
        | Svc.Frame.Oversized n ->
          check_int "announced length" 100_000 n;
          incr oversized
        | e -> Alcotest.failf "decode: %s" (Svc.Frame.error_string e))
  done;
  check_int "oversized reported once" 1 !oversized;
  check_bool "stream stays framed after skip" true (!frames = [ "next" ])

let test_decoder_desynced_sticky () =
  let d = Svc.Frame.decoder () in
  let b = Bytes.of_string "\xff\xff\xff\xffjunk" in
  Svc.Frame.feed d b 0 (Bytes.length b);
  (match Svc.Frame.next d with
  | Error (Svc.Frame.Desynced n) ->
    check_bool "beyond wire limit" true (n > Svc.Frame.max_wire_len)
  | _ -> Alcotest.fail "expected Desynced");
  (* unrecoverable: feeding well-formed frames cannot resynchronize *)
  let g = Bytes.of_string (Svc.Frame.encode "x") in
  Svc.Frame.feed d g 0 (Bytes.length g);
  match Svc.Frame.next d with
  | Error (Svc.Frame.Desynced _) -> ()
  | _ -> Alcotest.fail "Desynced must be sticky"

(* ------------------------------------------------------------ protocol *)

let test_protocol_roundtrip () =
  let rq =
    P.request ~deadline_ms:250
      ~params:(J.Obj [ ("depth", J.Int 8) ])
      ~id:7 P.Modelcheck
  in
  (match P.request_of_json (P.request_json rq) with
  | Ok rq' ->
    check_int "id" 7 rq'.P.rq_id;
    check_bool "verb" true (rq'.P.rq_verb = P.Modelcheck);
    check_bool "deadline" true (rq'.P.rq_deadline_ms = Some 250);
    check_bool "params" true (J.equal rq'.P.rq_params rq.P.rq_params)
  | Error e -> Alcotest.failf "request round-trip: %s" e);
  List.iter
    (fun rs ->
      match P.response_of_json (P.response_json rs) with
      | Ok rs' ->
        check_int "id" rs.P.rs_id rs'.P.rs_id;
        check_bool "result" true (rs'.P.rs_result = rs.P.rs_result)
      | Error e -> Alcotest.failf "response round-trip: %s" e)
    [ P.ok ~id:3 (J.Str "pong"); P.error ~id:(-1) P.Overloaded "queue full" ]

let test_protocol_rejects () =
  let bad s =
    match P.parse s with
    | Error _ -> true
    | Ok j -> Result.is_error (P.request_of_json j)
  in
  List.iter
    (fun (label, s) -> check_bool label true (bad s))
    [
      ("not json", "]");
      ("not an object", "[1,2]");
      ("missing version", "{\"id\":1,\"verb\":\"ping\"}");
      ("wrong version", "{\"v\":2,\"id\":1,\"verb\":\"ping\"}");
      ("missing id", "{\"v\":1,\"verb\":\"ping\"}");
      ("unknown verb", "{\"v\":1,\"id\":1,\"verb\":\"dance\"}");
      ("params not object", "{\"v\":1,\"id\":1,\"verb\":\"ping\",\"params\":3}");
      ( "non-positive deadline",
        "{\"v\":1,\"id\":1,\"verb\":\"ping\",\"deadline_ms\":0}" );
    ]

(* --------------------------------------------------------------- jobq *)

let test_jobq_bound_and_order () =
  let q = Svc.Jobq.create ~bound:2 () in
  check_bool "push 1" true (Svc.Jobq.try_push q 1 = `Ok);
  check_bool "push 2" true (Svc.Jobq.try_push q 2 = `Ok);
  check_bool "push 3 is Full" true (Svc.Jobq.try_push q 3 = `Full);
  check_int "length" 2 (Svc.Jobq.length q);
  check_bool "pop 1" true (Svc.Jobq.pop q = Some 1);
  check_bool "push 4 after pop" true (Svc.Jobq.try_push q 4 = `Ok);
  Svc.Jobq.close q;
  check_bool "push after close" true (Svc.Jobq.try_push q 5 = `Closed);
  (* close drains: already-accepted items still come out, then None *)
  check_bool "drain 2" true (Svc.Jobq.pop q = Some 2);
  check_bool "drain 4" true (Svc.Jobq.pop q = Some 4);
  check_bool "empty after drain" true (Svc.Jobq.pop q = None)

(* Fair dequeue: a greedy client (conn 0) and a polite one (conn 1) share
   a keyed queue of bound 2. The bound stays global — greed is rejected at
   admission — and pops alternate between the classes, so the polite
   client's request waits behind at most one greedy job per round. *)
let test_jobq_fair_dequeue () =
  let q = Svc.Jobq.create ~key:fst ~bound:2 () in
  check_bool "greedy 1" true (Svc.Jobq.try_push q (0, 1) = `Ok);
  check_bool "greedy 2" true (Svc.Jobq.try_push q (0, 2) = `Ok);
  check_bool "greedy over bound" true (Svc.Jobq.try_push q (0, 3) = `Full);
  check_bool "first pop is greedy" true (Svc.Jobq.pop q = Some (0, 1));
  check_bool "polite wins freed slot" true (Svc.Jobq.try_push q (1, 1) = `Ok);
  check_bool "greedy still rejected" true (Svc.Jobq.try_push q (0, 3) = `Full);
  (* rotation: conn 0's turn, then conn 1's — even though (0,3) below is
     pushed before conn 1 is served again *)
  check_bool "round-robin serves 0" true (Svc.Jobq.pop q = Some (0, 2));
  check_bool "greedy refills" true (Svc.Jobq.try_push q (0, 3) = `Ok);
  check_bool "round-robin serves 1" true (Svc.Jobq.pop q = Some (1, 1));
  check_bool "then 0 again" true (Svc.Jobq.pop q = Some (0, 3));
  (* interleaving with a backlog: 3 greedy jobs queued ahead of 1 polite
     one; FIFO would serve the polite job last, round-robin serves it
     second *)
  let q = Svc.Jobq.create ~key:fst ~bound:4 () in
  List.iter
    (fun x -> check_bool "push" true (Svc.Jobq.try_push q x = `Ok))
    [ (0, 1); (0, 2); (0, 3); (1, 9) ];
  let order = List.init 4 (fun _ -> Option.get (Svc.Jobq.pop q)) in
  check_bool "polite served second" true
    (order = [ (0, 1); (1, 9); (0, 2); (0, 3) ])

let test_jobq_blocking_pop () =
  let q = Svc.Jobq.create ~bound:4 () in
  let got = Atomic.make (-1) in
  let consumer =
    Thread.create
      (fun () ->
        match Svc.Jobq.pop q with
        | Some v -> Atomic.set got v
        | None -> Atomic.set got (-2))
      ()
  in
  Thread.delay 0.02;
  check_bool "push wakes" true (Svc.Jobq.try_push q 42 = `Ok);
  Thread.join consumer;
  check_int "popped" 42 (Atomic.get got)

(* connect against nothing (ENOENT, retryable): a 400 ms backoff doubling
   over 10 retries would sleep for many seconds, but the 200 ms deadline
   budget clamps the first sleep and forbids the second attempt *)
let test_connect_deadline_clamp () =
  let path = socket_path () in
  let t0 = Obs.Clock.now_ns () in
  (try
     let c =
       Svc.Client.connect ~retries:10 ~backoff_ms:400 ~deadline_ms:200 path
     in
     Svc.Client.close c;
     Alcotest.fail "connected with no server listening"
   with Unix.Unix_error _ -> ());
  let elapsed = Obs.Clock.elapsed_s ~since:t0 in
  check_bool
    (Printf.sprintf "gave up inside the budget (%.3fs)" elapsed)
    true
    (elapsed < 1.5)

(* ----------------------------------------------------------- end-to-end *)

let with_server ?sink ?registry cfg f =
  let t = Svc.Server.start ?sink ?registry cfg in
  Fun.protect
    ~finally:(fun () ->
      Svc.Server.shutdown t;
      Svc.Server.wait t)
    (fun () -> f t)

let default_cfg path =
  {
    (Svc.Server.default_config ~listen:(Svc.Addr.Unix_path path)) with
    workers = 1;
  }

let test_server_ping_solve_stats () =
  let path = socket_path () in
  with_server (default_cfg path) (fun _ ->
      let c = Svc.Client.connect path in
      (match Svc.Client.call c P.Ping with
      | Ok (J.Str "pong") -> ()
      | r ->
        Alcotest.failf "ping: %s"
          (match r with
          | Ok j -> J.to_string j
          | Error e -> Svc.Client.error_string e));
      (match
         Svc.Client.call
           ~params:(J.Obj [ ("task", J.Str "consensus"); ("n", J.Int 3) ])
           c P.Solve
       with
      | Ok j ->
        check_bool "solve ok" true (J.member "ok" j = Some (J.Bool true))
      | Error e -> Alcotest.failf "solve: %s" (Svc.Client.error_string e));
      (match Svc.Client.call c P.Stats with
      | Ok j -> (
        match J.member "accepted" j with
        | Some (J.Int n) -> check_bool "accepted >= 1" true (n >= 1)
        | _ -> Alcotest.fail "stats: no accepted field")
      | Error e -> Alcotest.failf "stats: %s" (Svc.Client.error_string e));
      (* malformed params are a clean bad_request, not a dead worker *)
      (match
         Svc.Client.call ~params:(J.Obj [ ("task", J.Str "nope" ) ]) c P.Solve
       with
      | Error (Svc.Client.Server (P.Bad_request, _)) -> ()
      | _ -> Alcotest.fail "expected bad_request");
      (* and the worker still serves afterwards *)
      (match Svc.Client.call ~params:(J.Obj [ ("depth", J.Int 6) ]) c P.Modelcheck with
      | Ok j ->
        check_bool "modelcheck ok" true
          (J.member "verdict" j = Some (J.Str "ok"))
      | Error e -> Alcotest.failf "modelcheck: %s" (Svc.Client.error_string e));
      Svc.Client.close c)

(* Raw pipelined connection: write several requests without waiting, then
   collect every response, keyed by id. *)
let raw_calls path requests =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  List.iter
    (fun rq -> Svc.Frame.write fd (J.to_string (P.request_json rq)))
    requests;
  let replies = Hashtbl.create 8 in
  let rec collect n =
    if n > 0 then
      match Svc.Frame.read ~max_len:(64 * 1024 * 1024) fd with
      | Ok payload ->
        (match P.parse payload with
        | Ok j -> (
          match P.response_of_json j with
          | Ok rs ->
            Hashtbl.replace replies rs.P.rs_id rs.P.rs_result;
            collect (n - 1)
          | Error e -> Alcotest.failf "bad response: %s" e)
        | Error e -> Alcotest.failf "bad response JSON: %s" e)
      | Error e -> Alcotest.failf "read: %s" (Svc.Frame.error_string e)
  in
  collect (List.length requests);
  Unix.close fd;
  replies

let slow_modelcheck ?deadline_ms ~id () =
  P.request ?deadline_ms ~params:(J.Obj [ ("depth", J.Int 14) ]) ~id P.Modelcheck

let test_server_backpressure () =
  let path = socket_path () in
  let cfg = { (default_cfg path) with queue_bound = 1 } in
  with_server cfg (fun _ ->
      (* one worker, bound 1: the first slow job occupies the worker, the
         second fills the queue, the rest must be rejected as overloaded *)
      let replies =
        raw_calls path (List.init 5 (fun i -> slow_modelcheck ~id:i ()))
      in
      let ok, overloaded =
        Hashtbl.fold
          (fun _ r (ok, ov) ->
            match r with
            | Ok _ -> (ok + 1, ov)
            | Error (P.Overloaded, _) -> (ok, ov + 1)
            | Error (c, m) ->
              Alcotest.failf "unexpected error %s: %s" (P.err_code_string c) m)
          replies (0, 0)
      in
      check_int "every request answered" 5 (ok + overloaded);
      check_bool "some rejected with overloaded" true (overloaded >= 1);
      check_bool "some served" true (ok >= 1))

let test_server_deadline () =
  let path = socket_path () in
  with_server (default_cfg path) (fun _ ->
      let c = Svc.Client.connect path in
      (* depth 14 runs for tens of milliseconds; a 5 ms deadline trips
         either while queued or mid-execution — both are deadline_exceeded,
         and the cancelled engine reports no verdict *)
      (match
         Svc.Client.call ~deadline_ms:5
           ~params:(J.Obj [ ("depth", J.Int 14) ])
           c P.Modelcheck
       with
      | Error (Svc.Client.Server (P.Deadline_exceeded, _)) -> ()
      | Ok _ -> Alcotest.fail "deadline did not trip"
      | Error e -> Alcotest.failf "deadline: %s" (Svc.Client.error_string e));
      (* the worker survives a timed-out job *)
      (match Svc.Client.call c P.Ping with
      | Ok (J.Str "pong") -> ()
      | _ -> Alcotest.fail "ping after timeout");
      Svc.Client.close c)

let test_server_client_eof_with_inflight_job () =
  let path = socket_path () in
  let t = Svc.Server.start (default_cfg path) in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Svc.Frame.write fd (J.to_string (P.request_json (slow_modelcheck ~id:1 ())));
  (* hang up before the reply: the job must still run to completion and
     write into a descriptor the refcount kept open (never one the kernel
     reused), and the server must stay serviceable *)
  Unix.close fd;
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_served () =
    match J.member "served" (Svc.Server.stats_json t) with
    | Some (J.Int n) when n >= 1 -> ()
    | _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "job was not served after client EOF";
      Thread.delay 0.005;
      wait_served ()
  in
  wait_served ();
  let c = Svc.Client.connect path in
  (match Svc.Client.call c P.Ping with
  | Ok (J.Str "pong") -> ()
  | _ -> Alcotest.fail "ping after orphaned job");
  Svc.Client.close c;
  Svc.Server.shutdown t;
  Svc.Server.wait t

let test_server_drain_loses_nothing () =
  let path = socket_path () in
  let cfg = { (default_cfg path) with queue_bound = 8 } in
  let t = Svc.Server.start cfg in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let jobs = 4 in
  List.iter
    (fun rq -> Svc.Frame.write fd (J.to_string (P.request_json rq)))
    (List.init jobs (fun i ->
         P.request ~params:(J.Obj [ ("depth", J.Int 10) ]) ~id:i P.Modelcheck));
  (* wait until all four are accepted (connection handshake and dispatch
     are asynchronous), then shut down with them queued/in-flight: every
     accepted job must still be answered *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_accepted () =
    match J.member "accepted" (Svc.Server.stats_json t) with
    | Some (J.Int n) when n >= jobs -> ()
    | _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "jobs were not accepted in time";
      Thread.delay 0.005;
      wait_accepted ()
  in
  wait_accepted ();
  Svc.Server.shutdown t;
  let answered = ref 0 in
  (try
     for _ = 1 to jobs do
       match Svc.Frame.read ~max_len:(64 * 1024 * 1024) fd with
       | Ok payload ->
         (match Result.bind (P.parse payload) P.response_of_json with
         | Ok { P.rs_result = Ok _; _ } -> incr answered
         | Ok { P.rs_result = Error (c, m); _ } ->
           Alcotest.failf "drained job failed %s: %s" (P.err_code_string c) m
         | Error e -> Alcotest.failf "bad response: %s" e)
       | Error e -> Alcotest.failf "read: %s" (Svc.Frame.error_string e)
     done
   with e ->
     Unix.close fd;
     raise e);
  Unix.close fd;
  Svc.Server.wait t;
  check_int "zero accepted jobs lost" jobs !answered

let test_server_oversized_and_events () =
  let path = socket_path () in
  let cfg = { (default_cfg path) with max_frame = 256 } in
  let sink, events = Obs.Sink.buffer () in
  let registry = Obs.Metrics.registry () in
  with_server ~sink ~registry cfg (fun _ ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Svc.Frame.write fd (String.make 1000 ' ');
      (match Result.bind (P.parse (Result.get_ok (Svc.Frame.read fd)))
               P.response_of_json with
      | Ok { P.rs_id = -1; rs_result = Error (P.Oversized, _) } -> ()
      | _ -> Alcotest.fail "expected oversized reply with id -1");
      (* the connection survives; a well-formed request still works *)
      Svc.Frame.write fd (J.to_string (P.request_json (P.request ~id:9 P.Ping)));
      (match Result.bind (P.parse (Result.get_ok (Svc.Frame.read fd)))
               P.response_of_json with
      | Ok { P.rs_id = 9; rs_result = Ok (J.Str "pong") } -> ()
      | _ -> Alcotest.fail "expected pong after oversized");
      Unix.close fd;
      Thread.delay 0.05);
  let names = List.map (fun e -> e.Obs.Event.name) (events ()) in
  let has n = List.mem n names in
  check_bool "svc.start" true (has Obs.Event.Name.svc_start);
  check_bool "svc.conn.open" true (has Obs.Event.Name.svc_conn_open);
  check_bool "svc.reject" true (has Obs.Event.Name.svc_reject);
  check_bool "svc.drain" true (has Obs.Event.Name.svc_drain);
  check_bool "svc.stop" true (has Obs.Event.Name.svc_stop);
  (* the reject landed in the labeled counter too *)
  let rejected = ref 0 in
  Obs.Metrics.iter_counters registry (fun name labels v ->
      if name = "svc.requests.rejected" && labels = [ ("code", "oversized") ]
      then rejected := v);
  check_int "rejected{code=oversized}" 1 !rejected

let test_server_desynced_frame_closes_conn () =
  let path = socket_path () in
  with_server (default_cfg path) (fun _ ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      (* an unframeable header: the stream can never resynchronize, so the
         server must answer once and hang up rather than misparse payload
         bytes as frames *)
      ignore (Unix.write fd (Bytes.of_string "\xff\xff\xff\xff") 0 4);
      (match
         Result.bind
           (P.parse (Result.get_ok (Svc.Frame.read fd)))
           P.response_of_json
       with
      | Ok { P.rs_id = -1; rs_result = Error (P.Oversized, _) } -> ()
      | _ -> Alcotest.fail "expected oversized reply with id -1");
      (match Svc.Frame.read fd with
      | Error Svc.Frame.Eof -> ()
      | _ -> Alcotest.fail "expected the server to close the connection");
      Unix.close fd)

let test_server_shutdown_verb_refuses_new () =
  let path = socket_path () in
  let t = Svc.Server.start (default_cfg path) in
  let c = Svc.Client.connect path in
  (match Svc.Client.call c P.Shutdown with
  | Ok (J.Str "draining") -> ()
  | _ -> Alcotest.fail "shutdown reply");
  (* a queued verb on the draining server is refused, not queued *)
  (match Svc.Client.call ~params:(J.Obj [ ("depth", J.Int 6) ]) c P.Modelcheck with
  | Error (Svc.Client.Server (P.Shutting_down, _)) -> ()
  | Error (Svc.Client.Transport _) -> ()  (* conn already torn down: also fine *)
  | Error (Svc.Client.Server (c, m)) ->
    Alcotest.failf "unexpected error %s: %s" (P.err_code_string c) m
  | Ok _ -> Alcotest.fail "request accepted after shutdown");
  Svc.Client.close c;
  Svc.Server.wait t

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay
    && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let test_server_deadline_bomb () =
  (* parse-level boundary: the largest legal deadline is accepted, one
     past it is not *)
  let rq_json ms =
    J.Obj
      [
        ("v", J.Int 1);
        ("id", J.Int 1);
        ("verb", J.Str "ping");
        ("deadline_ms", J.Int ms);
      ]
  in
  check_bool "max_deadline_ms accepted" true
    (Result.is_ok (P.request_of_json (rq_json P.max_deadline_ms)));
  check_bool "max_deadline_ms + 1 rejected" true
    (Result.is_error (P.request_of_json (rq_json (P.max_deadline_ms + 1))));
  let path = socket_path () in
  with_server (default_cfg path) (fun _ ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      (* ~295 years in ms: times 10^6 this overflows int64 nanoseconds,
         which used to wrap the absolute deadline negative and kill the
         job with deadline_exceeded on arrival; it must be a parse-time
         bad_request instead *)
      Svc.Frame.write fd
        "{\"v\":1,\"id\":7,\"verb\":\"modelcheck\",\"deadline_ms\":9300000000000}";
      (match
         Result.bind
           (P.parse (Result.get_ok (Svc.Frame.read fd)))
           P.response_of_json
       with
      | Ok { P.rs_id = -1; rs_result = Error (P.Bad_request, msg) } ->
        check_bool "error names deadline_ms" true (contains msg "deadline_ms")
      | _ -> Alcotest.fail "expected bad_request for the deadline bomb");
      Unix.close fd;
      (* the boundary value means "far future", never an instant timeout *)
      let c = Svc.Client.connect path in
      (match
         Svc.Client.call ~deadline_ms:P.max_deadline_ms
           ~params:(J.Obj [ ("depth", J.Int 6) ])
           c P.Modelcheck
       with
      | Ok j ->
        check_bool "verdict ok" true (J.member "verdict" j = Some (J.Str "ok"))
      | Error e ->
        Alcotest.failf "max deadline: %s" (Svc.Client.error_string e));
      Svc.Client.close c)

let test_deadline_cancel_first_poll () =
  (* the cancel hook must consult the clock on its FIRST call: a deadline
     already expired at dispatch used to survive 255 polls of the throttle
     window before anyone looked at the clock *)
  let now = Obs.Clock.now_ns () in
  let expired = Svc.Pool.deadline_cancel (Int64.sub now 1L) in
  check_bool "expired deadline trips on the first poll" true (expired ());
  check_bool "and stays tripped" true (expired ());
  let far = Svc.Pool.deadline_cancel (Int64.add now 60_000_000_000L) in
  check_bool "a far-future deadline does not trip" false (far ())

let test_server_pipelining_out_of_order () =
  let path = socket_path () in
  (* one worker: the slow job sent FIRST must be answered LAST, overtaken
     by the pings the shard answers inline while the job runs *)
  with_server (default_cfg path) (fun _ ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let pings = 8 in
      List.iter
        (fun rq -> Svc.Frame.write fd (J.to_string (P.request_json rq)))
        (slow_modelcheck ~id:0 ()
        :: List.init pings (fun i -> P.request ~id:(i + 1) P.Ping));
      let order = ref [] in
      for _ = 0 to pings do
        match Svc.Frame.read ~max_len:(64 * 1024 * 1024) fd with
        | Ok payload -> (
          match Result.bind (P.parse payload) P.response_of_json with
          | Ok rs ->
            (match rs.P.rs_result with
            | Ok _ -> ()
            | Error (c, m) ->
              Alcotest.failf "id %d failed %s: %s" rs.P.rs_id
                (P.err_code_string c) m);
            order := rs.P.rs_id :: !order
          | Error e -> Alcotest.failf "bad response: %s" e)
        | Error e -> Alcotest.failf "read: %s" (Svc.Frame.error_string e)
      done;
      let order = List.rev !order in
      check_int "every request answered" (pings + 1) (List.length order);
      check_int "slow job answered last, out of send order" 0
        (List.nth order pings);
      (* ping responses from one connection keep their relative order *)
      List.iteri
        (fun i id -> if i < pings then check_int "ping order" (i + 1) id)
        order;
      Unix.close fd)

let test_server_reply_cap () =
  let path = socket_path () in
  let cfg = { (default_cfg path) with max_reply = 256 } in
  with_server cfg (fun _ ->
      let c = Svc.Client.connect path in
      (* a solve report is far larger than 256 bytes: it must degrade to a
         bounded oversized error carrying the request's id — pre-fix the
         unframeable reply escaped as an exception and killed the
         connection's thread mid-write *)
      (match
         Svc.Client.call
           ~params:(J.Obj [ ("task", J.Str "consensus"); ("n", J.Int 3) ])
           c P.Solve
       with
      | Error (Svc.Client.Server (P.Oversized, msg)) ->
        check_bool "error names the reply limit" true
          (contains msg "reply limit")
      | Ok j ->
        Alcotest.failf "reply of %d bytes was not capped"
          (String.length (J.to_string j))
      | Error e -> Alcotest.failf "solve: %s" (Svc.Client.error_string e));
      (* the connection survives, and small replies still fit *)
      (match Svc.Client.call c P.Ping with
      | Ok (J.Str "pong") -> ()
      | _ -> Alcotest.fail "ping after capped reply");
      Svc.Client.close c)

let test_server_run_twice_restores_signals () =
  let hits = Atomic.make 0 in
  let mine = Sys.Signal_handle (fun _ -> Atomic.incr hits) in
  let prev = Sys.signal Sys.sigterm mine in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigterm prev)
    (fun () ->
      let serve_and_stop () =
        let path = socket_path () in
        let th = Thread.create (fun () -> Svc.Server.run (default_cfg path)) () in
        let deadline = Unix.gettimeofday () +. 10. in
        let rec connect () =
          match Svc.Client.connect path with
          | c -> c
          | exception Unix.Unix_error _ ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "server did not come up";
            Thread.delay 0.01;
            connect ()
        in
        let c = connect () in
        (match Svc.Client.call c P.Shutdown with
        | Ok (J.Str "draining") -> ()
        | _ -> Alcotest.fail "shutdown reply");
        Svc.Client.close c;
        Thread.join th
      in
      let expect_hits label n =
        let deadline = Unix.gettimeofday () +. 5. in
        while Atomic.get hits < n && Unix.gettimeofday () < deadline do
          Thread.delay 0.005
        done;
        check_int label n (Atomic.get hits)
      in
      (* run installs its own SIGTERM/SIGINT handlers; when it returns it
         must put OURS back — pre-fix the stale handler kept pointing a
         later SIGTERM at the dead server's shutdown *)
      serve_and_stop ();
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      expect_hits "handler restored after first run" 1;
      (* and a second server in the same process starts, serves, stops *)
      serve_and_stop ();
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      expect_hits "handler restored after second run" 2)

(* ------------------------------------------------- addresses and TCP *)

let test_addr_parse () =
  let ok s expect =
    match Svc.Addr.of_string s with
    | Ok a -> check_string s expect (Svc.Addr.to_string a)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "/tmp/x.sock" "unix:/tmp/x.sock";
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "tcp:127.0.0.1:4000" "tcp:127.0.0.1:4000";
  ok "tcp::0" "tcp::0";
  ok "tcp:host.example:65535" "tcp:host.example:65535";
  List.iter
    (fun s ->
      match Svc.Addr.of_string s with
      | Ok a -> Alcotest.failf "%s parsed as %s" s (Svc.Addr.to_string a)
      | Error _ -> ())
    [ ""; "unix:"; "tcp:127.0.0.1"; "tcp:h:66000"; "tcp:h:-1"; "tcp:h:x" ];
  (* round-trip through to_string *)
  (match Svc.Addr.of_string "tcp::9" with
  | Ok a -> check_bool "reparse" true (Svc.Addr.of_string (Svc.Addr.to_string a) = Ok a)
  | Error e -> Alcotest.fail e)

(* the same end-to-end server, over a kernel-chosen TCP port: ping, a job
   verb, and listen_addr reporting the real port back *)
let test_server_tcp () =
  let cfg =
    {
      (Svc.Server.default_config
         ~listen:(Svc.Addr.Tcp ("127.0.0.1", 0)))
      with
      workers = 1;
    }
  in
  with_server cfg (fun t ->
      let addr = Svc.Server.listen_addr t in
      (match addr with
      | Svc.Addr.Tcp ("127.0.0.1", p) ->
        check_bool "kernel picked a real port" true (p > 0)
      | a -> Alcotest.failf "bound %s" (Svc.Addr.to_string a));
      let c = Svc.Client.connect (Svc.Addr.to_string addr) in
      (match Svc.Client.call c P.Ping with
      | Ok (J.Str "pong") -> ()
      | _ -> Alcotest.fail "ping over tcp");
      (match
         Svc.Client.call ~params:(J.Obj [ ("depth", J.Int 5) ]) c P.Modelcheck
       with
      | Ok j ->
        check_bool "modelcheck over tcp" true
          (J.member "verdict" j = Some (J.Str "ok"))
      | Error e -> Alcotest.failf "modelcheck: %s" (Svc.Client.error_string e));
      Svc.Client.close c)

let test_server_metrics_verb () =
  let path = socket_path () in
  let registry = Obs.Metrics.registry () in
  with_server ~registry (default_cfg path) (fun _ ->
      let c = Svc.Client.connect path in
      (* inline verbs don't touch the registry; run one pool job so the
         accepted/latency metrics exist before the snapshot *)
      (match
         Svc.Client.call ~params:(J.Obj [ ("depth", J.Int 4) ]) c P.Modelcheck
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "modelcheck: %s" (Svc.Client.error_string e));
      (match Svc.Client.call c P.Metrics with
      | Ok j -> (
        match J.member "metrics" j with
        | Some (J.List ms) ->
          (* the server's own counters live in the registry the snapshot
             reads — at least the accepted-requests counter must show *)
          check_bool "some metrics" true (ms <> [])
        | _ -> Alcotest.fail "metrics: no metrics list")
      | Error e -> Alcotest.failf "metrics: %s" (Svc.Client.error_string e));
      Svc.Client.close c)

(* hello negotiation end-to-end: an offered binary codec comes back acked
   and the whole verb surface works over it; the default connection stays
   JSON on the same server *)
let test_codec_negotiation () =
  let path = socket_path () in
  with_server (default_cfg path) (fun _ ->
      let c = Svc.Client.connect ~codec:P.Codec.Binary path in
      check_bool "binary negotiated" true
        (Svc.Client.codec c = P.Codec.Binary);
      (match Svc.Client.call c P.Ping with
      | Ok (J.Str "pong") -> ()
      | _ -> Alcotest.fail "binary ping");
      (match
         Svc.Client.call
           ~params:(J.Obj [ ("task", J.Str "consensus"); ("n", J.Int 3) ])
           c P.Solve
       with
      | Ok j ->
        check_bool "solve over binary" true
          (J.member "ok" j = Some (J.Bool true))
      | Error e -> Alcotest.failf "solve: %s" (Svc.Client.error_string e));
      (* errors travel binary too *)
      (match
         Svc.Client.call ~params:(J.Obj [ ("task", J.Str "nope") ]) c P.Solve
       with
      | Error (Svc.Client.Server (P.Bad_request, _)) -> ()
      | _ -> Alcotest.fail "expected bad_request over binary");
      Svc.Client.close c;
      let c = Svc.Client.connect path in
      check_bool "json is the default" true
        (Svc.Client.codec c = P.Codec.Json);
      (match Svc.Client.call c P.Ping with
      | Ok (J.Str "pong") -> ()
      | _ -> Alcotest.fail "json ping");
      Svc.Client.close c)

(* frames self-describe their codec, so one connection can mix them freely;
   each reply echoes its request's codec, and the fast-path binary pong is
   byte-identical to the generic encoder's output *)
let test_codec_mixed_frames () =
  let path = socket_path () in
  with_server (default_cfg path) (fun _ ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let send codec rq = Svc.Frame.write fd (P.Codec.encode_request codec rq) in
      (* a fast-path binary ping, a generic binary ping (the deadline flag
         disqualifies the fast path), and a JSON ping, pipelined *)
      send P.Codec.Binary (P.request ~id:5 P.Ping);
      send P.Codec.Binary (P.request ~deadline_ms:60_000 ~id:6 P.Ping);
      send P.Codec.Json (P.request ~id:7 P.Ping);
      let replies = Hashtbl.create 4 in
      for _ = 1 to 3 do
        match Svc.Frame.read fd with
        | Ok payload -> (
          match P.Codec.decode_response payload with
          | Ok rs -> Hashtbl.replace replies rs.P.rs_id (payload, rs.P.rs_result)
          | Error e -> Alcotest.failf "decode: %s" e)
        | Error e -> Alcotest.failf "read: %s" (Svc.Frame.error_string e)
      done;
      Unix.close fd;
      let reply id =
        match Hashtbl.find_opt replies id with
        | Some r -> r
        | None -> Alcotest.failf "no reply for id %d" id
      in
      List.iter
        (fun (id, codec) ->
          let payload, result = reply id in
          (match result with
          | Ok (J.Str "pong") -> ()
          | _ -> Alcotest.failf "id %d: expected pong" id);
          check_bool "reply codec echoes request codec" true
            (P.Codec.detect payload = codec))
        [ (5, P.Codec.Binary); (6, P.Codec.Binary); (7, P.Codec.Json) ];
      (* the in-place fast path and the generic encoder must be
         indistinguishable on the wire *)
      let fast, _ = reply 5 in
      check_bool "fast-path pong equals generic encoding" true
        (fast = P.Codec.encode_response P.Codec.Binary (P.ok ~id:5 (J.Str "pong"))))

let test_client_connect_retry () =
  let path = socket_path () in
  (* nothing listening, no retries: immediate refusal *)
  (match Svc.Client.connect path with
  | exception Unix.Unix_error _ -> ()
  | c ->
    Svc.Client.close c;
    Alcotest.fail "connected to nothing");
  (* bad address text is Invalid_argument, not a retry loop *)
  (match Svc.Client.connect "tcp:1.2.3.4" with
  | exception Invalid_argument _ -> ()
  | c ->
    Svc.Client.close c;
    Alcotest.fail "bad address accepted");
  (* server comes up late; a patient connect lands *)
  let t = ref None in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.15;
        t := Some (Svc.Server.start (default_cfg path)))
      ()
  in
  let c = Svc.Client.connect ~retries:20 ~backoff_ms:20 path in
  (match Svc.Client.call c P.Ping with
  | Ok (J.Str "pong") -> ()
  | _ -> Alcotest.fail "ping after retry");
  Svc.Client.close c;
  Thread.join starter;
  match !t with
  | Some srv ->
    Svc.Server.shutdown srv;
    Svc.Server.wait srv
  | None -> Alcotest.fail "server never started"

(* ------------------------------------------------- scenario / campaign *)

(* An invalid caller-supplied scenario is a structured bad_request naming
   the failing JSON path — and the connection survives to serve the next
   (valid) scenario on the same socket. *)
let test_server_scenario_validation () =
  let path = socket_path () in
  with_server (default_cfg path) (fun _ ->
      let c = Svc.Client.connect path in
      let bad =
        J.Obj
          [
            ("v", J.Int 1); ("name", J.Str "bad");
            ("verb", J.Str "modelcheck");
            ("params", J.Obj [ ("scenario", J.Str "typo") ]);
            ("expect", J.Obj [ ("outcome", J.Str "safe") ]);
          ]
      in
      (match Svc.Client.call ~params:bad c P.Scenario with
      | Error (Svc.Client.Server (P.Bad_request, msg)) ->
        check_bool "names the path" true
          (String.length msg > 0
          && Option.is_some
               (String.index_opt msg '$')
          && Option.is_some (String.index_opt msg '|'))
      | r ->
        Alcotest.failf "expected bad_request, got %s"
          (match r with
          | Ok j -> J.to_string j
          | Error e -> Svc.Client.error_string e));
      let good =
        J.Obj
          [
            ("v", J.Int 1); ("name", J.Str "good");
            ("verb", J.Str "modelcheck");
            ( "params",
              J.Obj [ ("scenario", J.Str "safe-agreement"); ("depth", J.Int 6) ]
            );
            ("expect", J.Obj [ ("outcome", J.Str "safe") ]);
          ]
      in
      (match Svc.Client.call ~params:good c P.Scenario with
      | Ok j -> (
        check_bool "scenario echoed" true
          (J.member "scenario" j = Some (J.Str "good"));
        match Option.bind (J.member "result" j) (J.member "verdict") with
        | Some (J.Str "ok") -> ()
        | _ -> Alcotest.fail "no ok verdict in result")
      | Error e ->
        Alcotest.failf "good scenario: %s" (Svc.Client.error_string e));
      Svc.Client.close c)

(* A campaign running over the wire honors per-scenario deadlines: the slow
   row comes back as a timeout (not a fail, not a dead connection), and the
   rows after it still run. *)
let test_campaign_client_deadlines () =
  let path = socket_path () in
  with_server (default_cfg path) (fun _ ->
      let mc ?deadline_ms ?(expect = Scenario.Spec.Safe) name depth =
        {
          Scenario.Spec.sp_name = name;
          sp_work =
            Scenario.Spec.Modelcheck
              {
                Scenario.Spec.mc_scenario = "safe-agreement"; mc_n_s = 1;
                mc_depth = depth; mc_reduce = false;
              };
          sp_deadline_ms = deadline_ms;
          sp_expect = expect;
        }
      in
      let specs =
        [
          mc "a:fast" 6;
          mc ~deadline_ms:1 "a:slow" 14;
          mc ~deadline_ms:1 ~expect:(Scenario.Spec.Err "deadline_exceeded")
            "a:slow-declared" 14;
          mc "a:after" 6;
        ]
      in
      let c = Svc.Client.connect path in
      let s =
        Svc.Campaign.run_client ~window:2 ~name:"deadlines" ~client:c specs
      in
      Svc.Client.close c;
      let outcome name =
        (List.find
           (fun r -> r.Svc.Campaign.row_spec.Scenario.Spec.sp_name = name)
           s.Svc.Campaign.s_rows)
          .Svc.Campaign.row_outcome
      in
      check_bool "fast passes" true (outcome "a:fast" = Scenario.Spec.Pass);
      check_bool "slow is timeout, not fail" true
        (outcome "a:slow" = Scenario.Spec.Timeout);
      check_bool "declared timeout passes" true
        (outcome "a:slow-declared" = Scenario.Spec.Pass);
      check_bool "row after timeout still runs" true
        (outcome "a:after" = Scenario.Spec.Pass);
      check_int "timeouts" 1 s.Svc.Campaign.s_timeout;
      check_int "fails" 0 s.Svc.Campaign.s_fail)

let suite =
  [
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "oversized frame keeps stream sync" `Quick
      test_frame_oversized_keeps_sync;
    Alcotest.test_case "desynced frame is unrecoverable" `Quick
      test_frame_desynced;
    Alcotest.test_case "truncated frame" `Quick test_frame_truncated;
    Alcotest.test_case "decoder: incremental feed" `Quick
      test_decoder_incremental;
    Alcotest.test_case "decoder: oversized skip keeps sync" `Quick
      test_decoder_oversized_skip;
    Alcotest.test_case "decoder: desynced is sticky" `Quick
      test_decoder_desynced_sticky;
    Alcotest.test_case "protocol round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol rejects malformed" `Quick test_protocol_rejects;
    Alcotest.test_case "jobq bound, order, drain" `Quick
      test_jobq_bound_and_order;
    Alcotest.test_case "jobq fair dequeue (greedy vs polite)" `Quick
      test_jobq_fair_dequeue;
    Alcotest.test_case "jobq blocking pop" `Quick test_jobq_blocking_pop;
    Alcotest.test_case "connect backoff clamped to deadline" `Quick
      test_connect_deadline_clamp;
    Alcotest.test_case "server: ping, solve, stats, bad request" `Quick
      test_server_ping_solve_stats;
    Alcotest.test_case "server: backpressure rejects with overloaded" `Quick
      test_server_backpressure;
    Alcotest.test_case "server: deadline exceeded" `Quick test_server_deadline;
    Alcotest.test_case "server: client EOF with job in flight" `Quick
      test_server_client_eof_with_inflight_job;
    Alcotest.test_case "server: drain loses no accepted job" `Quick
      test_server_drain_loses_nothing;
    Alcotest.test_case "server: desynced frame closes connection" `Quick
      test_server_desynced_frame_closes_conn;
    Alcotest.test_case "server: oversized frame, events, metrics" `Quick
      test_server_oversized_and_events;
    Alcotest.test_case "server: shutdown verb refuses new work" `Quick
      test_server_shutdown_verb_refuses_new;
    Alcotest.test_case "server: deadline_ms bomb is a bad request" `Quick
      test_server_deadline_bomb;
    Alcotest.test_case "pool: expired deadline cancels on first poll" `Quick
      test_deadline_cancel_first_poll;
    Alcotest.test_case "server: pipelined requests complete out of order"
      `Quick test_server_pipelining_out_of_order;
    Alcotest.test_case "server: overlong reply degrades to oversized" `Quick
      test_server_reply_cap;
    Alcotest.test_case "server: run twice, signal handlers restored" `Quick
      test_server_run_twice_restores_signals;
    Alcotest.test_case "addr: parse and round-trip" `Quick test_addr_parse;
    Alcotest.test_case "server: TCP transport end-to-end" `Quick
      test_server_tcp;
    Alcotest.test_case "server: metrics verb snapshots the registry" `Quick
      test_server_metrics_verb;
    Alcotest.test_case "codec: hello negotiation end-to-end" `Quick
      test_codec_negotiation;
    Alcotest.test_case "codec: mixed frames on one connection" `Quick
      test_codec_mixed_frames;
    Alcotest.test_case "client: connect retries until the server is up"
      `Quick test_client_connect_retry;
    Alcotest.test_case "server: scenario verb validates caller input" `Quick
      test_server_scenario_validation;
    Alcotest.test_case "campaign: per-scenario deadlines over the wire"
      `Quick test_campaign_client_deadlines;
  ]
