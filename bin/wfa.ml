(* wfa — command-line front end for the Wait-Freedom-with-Advice library.

   $ wfa solve --task consensus --n 4 --fd omega --crashes 1:50
   $ wfa solve --task ksa --k 2 --n 5 --fd vector
   $ wfa solve --task renaming --j 3 --l 4 --policy kconc:2
   $ wfa classify --n 4
   $ wfa witness --kind strong-renaming --j 3
   $ wfa extract --n 3 --k 1 --crashes 2:300                              *)

open Cmdliner
open Simkit
open Tasklib
open Efd

(* ---------------------------------------------------------------- args *)

let n_arg =
  Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of C-processes (= S-processes).")

let k_arg =
  Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Agreement parameter k.")

let j_arg =
  Arg.(value & opt int 3 & info [ "j" ] ~docv:"J" ~doc:"Renaming participants j.")

let l_arg =
  Arg.(value & opt (some int) None & info [ "l" ] ~docv:"L" ~doc:"Renaming name-space size (default j+k-1).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let seeds_arg =
  Arg.(value & opt int 25 & info [ "seeds" ] ~docv:"COUNT" ~doc:"Number of seeded runs.")

let budget_arg =
  Arg.(value & opt int 400_000 & info [ "budget" ] ~docv:"STEPS" ~doc:"Step budget per run.")

(* --crashes and --policy parse through Arg.conv: a malformed value is a
   cmdliner parse error (usage + clean nonzero exit), not an escaping
   exception with a backtrace. *)

let crashes_conv : (int * int) list Arg.conv =
  let parse s =
    if s = "" then Ok []
    else
      let item it =
        let err () =
          Error
            (`Msg
               (Fmt.str "invalid crash %S, expected I:T (0-based index, time)"
                  it))
        in
        match String.split_on_char ':' it with
        | [ i; t ] -> (
          match (int_of_string_opt i, int_of_string_opt t) with
          | Some i, Some t when i >= 0 && t >= 0 -> Ok (i, t)
          | _ -> err ())
        | _ -> err ()
      in
      List.fold_left
        (fun acc it ->
          match (acc, item it) with
          | Error e, _ -> Error e
          | _, Error e -> Error e
          | Ok l, Ok c -> Ok (l @ [ c ]))
        (Ok [])
        (String.split_on_char ',' s)
  in
  let print ppf l =
    Fmt.pf ppf "%a"
      Fmt.(list ~sep:(any ",") (pair ~sep:(any ":") int int))
      l
  in
  Arg.conv (parse, print)

let crashes_arg =
  Arg.(
    value
    & opt crashes_conv []
    & info [ "crashes" ] ~docv:"I:T,I:T"
        ~doc:"Crash S-process qI+1 at time T (comma-separated, 0-based indices).")

(* the CLI enums are Scenario.Build's name tables — the same lists the
   server and the scenario-file loader validate against, so a name the CLI
   accepts cannot be one the data format rejects *)
let task_arg =
  Arg.(
    value
    & opt (enum Scenario.Build.task_assoc) `Consensus
    & info [ "task" ] ~docv:"TASK"
        ~doc:
          (Fmt.str "Task: %s."
             (String.concat " | " Scenario.Build.task_names)))

let fd_arg =
  Arg.(
    value
    & opt (enum Scenario.Build.fd_assoc) `Vector
    & info [ "fd" ] ~docv:"FD"
        ~doc:(Fmt.str "Failure detector: %s."
                (String.concat " | " Scenario.Build.fd_names)))

let policy_conv : Scenario.Build.policy Arg.conv =
  let parse s =
    match Scenario.Build.policy_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  let print ppf p = Fmt.string ppf (Scenario.Build.policy_to_string p) in
  Arg.conv (parse, print)

let policy_arg =
  Arg.(
    value
    & opt policy_conv Scenario.Build.Fair
    & info [ "policy" ] ~docv:"POLICY" ~doc:"Schedule: fair | kconc:K | uniform:K.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Also write the result as JSON to $(docv).")

(* ------------------------------------------------------------- helpers *)

let policy_of_spec = Scenario.Build.policy_factory

(* Range-checking a crash index needs [n_s], known only at run time: report
   cleanly on stderr and exit nonzero without a backtrace. *)
let with_pattern ~n_s crashes f =
  match List.find_opt (fun (i, _) -> i >= n_s) crashes with
  | Some (i, _) ->
    Fmt.epr "wfa: --crashes index %d out of range (S-processes: 0..%d)@." i
      (n_s - 1);
    2
  | None ->
    f
      (if crashes = [] then Failure.failure_free n_s
       else Failure.pattern ~n_s crashes)

(* An unwritable --json path must be a one-line diagnostic and a nonzero
   exit, not an uncaught Sys_error with a backtrace. *)
let write_json path json =
  match
    let oc = open_out path in
    output_string oc (Obs.Json.to_string_pretty json);
    close_out oc
  with
  | () -> Fmt.pr "wrote %s@." path
  | exception Sys_error msg ->
    Fmt.epr "wfa: cannot write --json output: %s@." msg;
    exit 2

(* Run one scenario file through the same local path the campaign runner
   and the server's workers use (Svc.Jobs.run), and reflect the scenario's
   expectation in the exit code: pass 0, fail/timeout 1, load or
   unexpected errors 2. The other flags of the host command are ignored —
   the file is the whole configuration. *)
let run_scenario_file ~cmd path =
  match Scenario.Spec.load path with
  | Error msg ->
    Fmt.epr "wfa %s: %s@." cmd msg;
    2
  | Ok sp ->
    let verb = Scenario.Spec.verb sp in
    if verb <> cmd then begin
      Fmt.epr
        "wfa %s: %s describes a %s scenario — run it with wfa %s or wfa \
         campaign@."
        cmd path verb verb;
      2
    end
    else begin
      let s =
        Svc.Campaign.run_local ~name:sp.Scenario.Spec.sp_name [ sp ]
      in
      let row = List.hd s.Svc.Campaign.s_rows in
      Fmt.pr "scenario %s@.verb     %s@.expect   %s@.outcome  %s (%s)@."
        sp.Scenario.Spec.sp_name verb
        (Scenario.Spec.expect_string sp.Scenario.Spec.sp_expect)
        (Scenario.Spec.outcome_string row.Svc.Campaign.row_outcome)
        row.Svc.Campaign.row_detail;
      match row.Svc.Campaign.row_outcome with
      | Scenario.Spec.Pass -> 0
      | Scenario.Spec.Fail | Scenario.Spec.Timeout -> 1
      | Scenario.Spec.Error -> 2
    end

let scenario_file_arg cmd =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario-file" ] ~docv:"FILE"
        ~doc:
          (Fmt.str
             "Run the %s scenario described in $(docv) (ignoring the other \
              flags) and exit 0 iff its declared expectation holds."
             cmd))

(* ------------------------------------------------------------ commands *)

let solve scenario_file task_kind fd_kind policy n k j l seed budget crashes
    json =
  match scenario_file with
  | Some path -> run_scenario_file ~cmd:"solve" path
  | None ->
  let task = Scenario.Build.task task_kind ~n ~k ~j ~l in
  let algo = Scenario.Build.algo task_kind task ~k in
  let fd = Scenario.Build.fd fd_kind ~k in
  with_pattern ~n_s:n crashes (fun pattern ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~budget ~policy:(policy_of_spec policy) ~task ~algo ~fd
          ~pattern ~input ~seed ()
      in
      Fmt.pr
        "task     %s@.algo     %s@.fd       %s@.pattern  %a@.%a@.verdict  %s@."
        task.Task.task_name algo.Algorithm.algo_name (Fdlib.Fd.name fd)
        Failure.pp_pattern pattern Run.pp_report r
        (if Run.ok r then "OK" else "FAILED");
      Option.iter
        (fun path ->
          write_json path
            (Run.report_json ~labels:(Run.labels ~task ~algo ~fd ~seed) r))
        json;
      if Run.ok r then 0 else 1)

let classify n seeds =
  let table = Classifier.table ~seeds_per_level:seeds ~n () in
  Fmt.pr "%a@." Classifier.pp_table table;
  if List.for_all Classifier.consistent table then 0 else 1

let witness kind n j seeds explain =
  let seeds = List.init seeds (fun i -> i + 1) in
  let w =
    match kind with
    | `Strong_renaming -> Adversary.strong_renaming_witness ~seeds ~n ~j ()
    | `Consensus_reduction -> Adversary.consensus_reduction_witness ~seeds ~n ()
  in
  match w with
  | Some w ->
    if explain then begin
      let task, algo =
        match kind with
        | `Strong_renaming -> (Renaming.strong ~n ~j, Renaming_algos.fig4 ())
        | `Consensus_reduction ->
          ( Set_agreement.make ~u:[ 0; 1 ] ~n ~k:1 (),
            Adversary.consensus_via_strong_renaming () )
      in
      Adversary.explain
        ~policy:(Run.k_concurrent_uniform_policy 2)
        ~task ~algo ~fd:Fdlib.Fd.trivial w Fmt.stdout;
      Fmt.pr "@."
    end
    else Fmt.pr "%a@." Adversary.pp_witness w;
    0
  | None ->
    Fmt.pr "no witness found in %d seeds@." (List.length seeds);
    1

let fuzz scenario_file kind n j seed trials domains do_shrink explain json =
  match scenario_file with
  | Some path -> run_scenario_file ~cmd:"fuzz" path
  | None ->
  match Scenario.Build.fuzz_target kind ~n ~j with
  | Error msg ->
    Fmt.epr "wfa fuzz: %s@." msg;
    2
  | Ok target ->
  let res = Adversary.fuzz_target ~domains ~seed ~budget:trials target () in
  Fmt.pr "target   %s@.trials   %d/%d (%d domain%s, %.3fs, %.0f seeds/s)@."
    target.Adversary.t_name res.Adversary.f_trials res.Adversary.f_budget
    res.Adversary.f_domains
    (if res.Adversary.f_domains = 1 then "" else "s")
    res.Adversary.f_wall_s
    (float_of_int res.Adversary.f_trials /. Float.max 1e-9 res.Adversary.f_wall_s);
  match res.Adversary.f_witness with
  | None ->
    Fmt.pr "no witness found in %d trials@." res.Adversary.f_trials;
    Option.iter
      (fun path ->
        write_json path
          (Obs.Json.Obj [ ("fuzz", Adversary.fuzz_result_json res) ]))
      json;
    1
  | Some w ->
    Fmt.pr "trial    %d@.%a@." (Option.get res.Adversary.f_trial)
      Adversary.pp_witness w;
    let shrunk =
      if not do_shrink then None
      else begin
        let w', sh = Adversary.shrink_target target w in
        Fmt.pr "shrink   %a@.%a@." Adversary.pp_shrink_report sh
          Adversary.pp_witness w';
        Some (w', sh)
      end
    in
    if explain then begin
      let w = match shrunk with Some (w', _) -> w' | None -> w in
      Adversary.explain_target target w Fmt.stdout;
      Fmt.pr "@."
    end;
    Option.iter
      (fun path ->
        write_json path
          (Obs.Json.Obj
             (("fuzz", Adversary.fuzz_result_json res)
             ::
             (match shrunk with
             | None -> []
             | Some (w', sh) ->
               [
                 ("shrunk", Adversary.witness_json w');
                 ("shrink", Adversary.shrink_report_json sh);
               ]))))
      json;
    0

let extract n k seed crashes =
  with_pattern ~n_s:n crashes @@ fun pattern ->
  let task = Set_agreement.make ~n ~k () in
  let algo = Ksa.make ~max_rounds:128 ~k () in
  let fd = Fdlib.Leader_fds.vector_omega_k_silent ~max_stab:25 ~k () in
  let rng = Random.State.make [| seed |] in
  let inputs = Task.sample_input task rng in
  let result =
    Extraction.run ~outer_budget:15_000 ~sample_period:400 ~explore_budget:2_500
      ~max_samples:200 ~k ~fd ~algo ~inputs ~n_c:n ~pattern ~seed ()
  in
  let ok =
    Fdlib.Props.anti_omega_k_ok pattern result.Extraction.x_outputs ~k
      ~suffix:4_000
  in
  let witnesses =
    Fdlib.Props.anti_omega_k_witnesses pattern result.Extraction.x_outputs
      ~suffix:4_000
  in
  Fmt.pr "pattern            %a@." Failure.pp_pattern pattern;
  Fmt.pr "samples            %d@." result.Extraction.x_samples;
  Fmt.pr "explorations       %d@." result.Extraction.x_explorations;
  Fmt.pr "anti-Omega-%d holds %b@." k ok;
  Fmt.pr "spared correct     %a@."
    Fmt.(list ~sep:(any ", ") (fun ppf q -> pf ppf "q%d" (q + 1)))
    witnesses;
  if ok then 0 else 1

let emulate n seed crashes budget =
  with_pattern ~n_s:n crashes @@ fun pattern ->
  let result =
    Emulation.run ~budget
      ~fd:(Fdlib.Classic.eventually_strong ~max_stab:60 ())
      ~pattern ~seed Emulation.omega_from_eventually_strong
  in
  let ok =
    Fdlib.Props.omega_ok pattern result.Emulation.em_outputs
      ~suffix:(budget / 8)
  in
  Fmt.pr "reduction          Omega <= <>S (suspicion counting)@.";
  Fmt.pr "pattern            %a@." Failure.pp_pattern pattern;
  Fmt.pr "steps              %d@." result.Emulation.em_steps;
  Fmt.pr "omega property     %b@." ok;
  if ok then 0 else 1

(* Shared by modelcheck and resume so the two commands' --json output
   diffs field-for-field: a resumed run must be indistinguishable from an
   uninterrupted one on every deterministic field. *)
let finish_check ~scenario ~depth ~n_s ~reduce ~json ~engine ~dist_fields
    verdict stats =
  Fmt.pr "engine: %s@." engine;
  Fmt.pr "stats:  %a@." Exhaustive.pp_stats stats;
  Option.iter
    (fun path ->
      write_json path
        (Obs.Json.Obj
           ([
              ("scenario", Obs.Json.Str scenario);
              ("depth", Obs.Json.Int depth);
              ("n_s", Obs.Json.Int n_s);
              ("reduce", Obs.Json.Bool reduce);
              ( "verdict",
                Obs.Json.Str
                  (match verdict with
                  | Exhaustive.Ok _ -> "ok"
                  | Exhaustive.Counterexample _ -> "counterexample") );
              ( "schedules",
                match verdict with
                | Exhaustive.Ok n -> Obs.Json.Int n
                | Exhaustive.Counterexample _ -> Obs.Json.Null );
              (* mirrored at top level so local and distributed runs
                 diff field-for-field without digging into stats *)
              ("sleep_pruned", Obs.Json.Int stats.Exhaustive.sleep_pruned);
              ( "orbits_collapsed",
                Obs.Json.Int stats.Exhaustive.orbits_collapsed );
              ("stats", Exhaustive.stats_json stats);
            ]
           @ dist_fields)))
    json;
  match verdict with
  | Exhaustive.Ok n ->
    Fmt.pr "%s: %d schedules of depth <= %d, property holds@." scenario n
      depth;
    0
  | Exhaustive.Counterexample cex ->
    Fmt.pr "VIOLATION under schedule %a@."
      Fmt.(list ~sep:(any " ") Pid.pp)
      cex;
    1

let dist_report ~workers r =
  let dead =
    List.filter
      (fun w -> w.Dist.Coordinator.wk_dead)
      r.Dist.Coordinator.r_workers
  in
  Fmt.pr "dist:   %d workers (%d failed), %d subtree jobs, %d re-dispatched@."
    (List.length workers) (List.length dead) r.Dist.Coordinator.r_jobs
    r.Dist.Coordinator.r_redispatched;
  [
    ( "dist",
      Obs.Json.Obj
        [
          ("workers", Obs.Json.Int (List.length workers));
          ("workers_dead", Obs.Json.Int (List.length dead));
          ("jobs", Obs.Json.Int r.Dist.Coordinator.r_jobs);
          ("redispatched", Obs.Json.Int r.Dist.Coordinator.r_redispatched);
          ( "frontier_pruned",
            Obs.Json.Int r.Dist.Coordinator.r_frontier_pruned );
        ] );
  ]

let ckpt_field ~dir ~resumed =
  ( "checkpoint",
    Obs.Json.Obj
      [ ("dir", Obs.Json.Str dir); ("resumed", Obs.Json.Bool resumed) ] )

let modelcheck scenario_file depth n_s reduce scenario workers split_depth
    checkpoint checkpoint_interval_s json =
  match scenario_file with
  | Some path -> run_scenario_file ~cmd:"modelcheck" path
  | None ->
  (* exhaustively check a named scenario over every schedule (default:
     2-process safe agreement); the S-processes are idle and symmetric, so
     --reduce declares them one symmetry class on top of sleep-set
     pruning. With --workers the frontier is split and fanned out to a
     fleet of wfa serve instances (lib/dist); the merge algebra makes the
     verdict and credited count identical to the local run. *)
  let n_s = max 1 n_s in
  match Mcheck.Scenario.find scenario ~n_s with
  | Error msg ->
    Fmt.epr "wfa modelcheck: %s@." msg;
    2
  | Ok sc -> (
    let finish =
      finish_check ~scenario:sc.Mcheck.Scenario.sc_name ~depth ~n_s ~reduce
        ~json
    in
    let store =
      match checkpoint with
      | None -> Ok None
      | Some dir ->
        Result.map (fun s -> Some (dir, s)) (Ckpt.Store.create dir)
    in
    match store with
    | Error msg ->
      Fmt.epr "wfa modelcheck: %s@." msg;
      2
    | Ok store -> (
      match (workers, store) with
      | [], None ->
        let red = Mcheck.Scenario.reduction sc ~reduce in
        let verdict, stats =
          Exhaustive.run ?reduce:red ~build:sc.Mcheck.Scenario.sc_build
            ~pids:sc.Mcheck.Scenario.sc_pids ~depth
            ~prop:sc.Mcheck.Scenario.sc_prop ()
        in
        finish
          ~engine:
            (if red = None then "incremental+memo"
             else "incremental+memo+sleep+symmetry")
          ~dist_fields:[] verdict stats
      | [], Some (dir, store) -> (
        match
          Ckpt.Local.run ~interval_s:checkpoint_interval_s ?split_depth
            ~reduce ~store ~scenario:sc ~depth ()
        with
        | Error msg ->
          Fmt.epr "wfa modelcheck: %s@." msg;
          2
        | Ok (verdict, stats) ->
          finish ~engine:"checkpointed"
            ~dist_fields:[ ckpt_field ~dir ~resumed:false ]
            verdict stats)
      | workers, store -> (
        let checkpoint =
          Option.map
            (fun (_, s) -> (s, checkpoint_interval_s))
            store
        in
        match
          Dist.Coordinator.run ?split_depth ?checkpoint ~reduce ~scenario:sc
            ~depth ~workers ()
        with
        | Error msg ->
          Fmt.epr "wfa modelcheck: %s@." msg;
          2
        | Ok r ->
          let dist_fields = dist_report ~workers r in
          let dist_fields =
            match store with
            | None -> dist_fields
            | Some (dir, _) -> dist_fields @ [ ckpt_field ~dir ~resumed:false ]
          in
          finish ~engine:"distributed" ~dist_fields
            r.Dist.Coordinator.r_verdict r.Dist.Coordinator.r_stats)))

let resume dir workers checkpoint_interval_s json =
  (* pick the run back up from its journal: the record's config decides
     scenario/depth/reduce/split-depth, the caller only decides the fleet *)
  match Ckpt.Store.create dir with
  | Error msg ->
    Fmt.epr "wfa resume: %s@." msg;
    2
  | Ok store -> (
    match Ckpt.Local.load_record store with
    | Error msg ->
      Fmt.epr "wfa resume: %s@." msg;
      2
    | Ok (gen, r) -> (
      let cfg = r.Ckpt.Record.ck_config in
      let total = r.Ckpt.Record.ck_total in
      let done_n = List.length r.Ckpt.Record.ck_done in
      Fmt.pr "resume: generation %d, %d/%d subtree jobs already done@." gen
        done_n total;
      let finish =
        finish_check ~scenario:cfg.Ckpt.Record.cf_scenario
          ~depth:cfg.Ckpt.Record.cf_depth ~n_s:cfg.Ckpt.Record.cf_n_s
          ~reduce:cfg.Ckpt.Record.cf_reduce ~json
      in
      match workers with
      | [] -> (
        match
          Ckpt.Local.resume ~interval_s:checkpoint_interval_s ~store ()
        with
        | Error msg ->
          Fmt.epr "wfa resume: %s@." msg;
          2
        | Ok (_, verdict, stats) ->
          finish ~engine:"checkpointed"
            ~dist_fields:[ ckpt_field ~dir ~resumed:true ]
            verdict stats)
      | workers -> (
        match
          Mcheck.Scenario.find cfg.Ckpt.Record.cf_scenario
            ~n_s:cfg.Ckpt.Record.cf_n_s
        with
        | Error msg ->
          Fmt.epr "wfa resume: %s@." msg;
          2
        | Ok sc -> (
          Ckpt.Store.note_resume store ~gen ~total ~done_:done_n;
          match
            Dist.Coordinator.run ~split_depth:cfg.Ckpt.Record.cf_split_depth
              ~reduce:cfg.Ckpt.Record.cf_reduce
              ~checkpoint:(store, checkpoint_interval_s) ~resume:r
              ~scenario:sc ~depth:cfg.Ckpt.Record.cf_depth ~workers ()
          with
          | Error msg ->
            Fmt.epr "wfa resume: %s@." msg;
            2
          | Ok rep ->
            let dist_fields = dist_report ~workers rep in
            finish ~engine:"distributed"
              ~dist_fields:(dist_fields @ [ ckpt_field ~dir ~resumed:true ])
              rep.Dist.Coordinator.r_verdict rep.Dist.Coordinator.r_stats))))

(* A fast, machine-readable slice of the bench suite (the full tables live
   in bench/main.exe --record): an E1-style batch, an E5-style batch and a
   low-depth exhaustive-engine comparison, serialized as one wfa.bench
   record. *)
let bench json =
  let record =
    Obs.Bench_record.create ~id:"smoke"
      ~title:"wfa bench smoke: 1-concurrent, ksa, exhaustive engines" ()
  in
  let failures = ref 0 in
  let batch ~section ~policy ~task ~algo ~fd ~env ~n_seeds () =
    let results =
      List.init n_seeds (fun i ->
          let seed = i + 1 in
          let rng = Random.State.make [| seed; 0xbe |] in
          let pattern = env.Failure.sample rng ~horizon:2_000 in
          let input = Task.sample_input task rng in
          Run.execute ~policy ~task ~algo ~fd ~pattern ~input ~seed ())
    in
    let pass = List.length (List.filter Run.ok results) in
    let total = List.length results in
    if pass < total then incr failures;
    Obs.Bench_record.row record
      ~labels:
        [
          ("section", section);
          ("task", task.Task.task_name);
          ("fd", Fdlib.Fd.name fd);
        ]
      [ ("pass", Obs.Json.Int pass); ("total", Obs.Json.Int total) ];
    Fmt.pr "%-16s %-28s %d/%d@." section task.Task.task_name pass total
  in
  let consensus = Set_agreement.consensus ~n:3 () in
  batch ~section:"1-concurrent"
    ~policy:(Run.k_concurrent_policy 1)
    ~task:consensus
    ~algo:(One_concurrent.make consensus)
    ~fd:Fdlib.Fd.trivial
    ~env:(Failure.wait_free_env 3) ~n_seeds:4 ();
  let ksa = Set_agreement.make ~n:3 ~k:1 () in
  batch ~section:"ksa" ~policy:Run.fair_policy ~task:ksa
    ~algo:(Ksa.make ~k:1 ())
    ~fd:(Fdlib.Leader_fds.vector_omega_k ~max_stab:40 ~k:1 ())
    ~env:(Failure.e_t ~n_s:3 ~t:2)
    ~n_seeds:4 ();
  (* low-depth checker comparison: replay baseline vs incremental+memo *)
  let build () =
    let mem = Memory.create () in
    let sa = Bglib.Safe_agreement.create mem ~n:2 in
    let c_code i () =
      Bglib.Safe_agreement.propose sa ~me:i (Value.int (100 + i));
      let rec resolve () =
        match Bglib.Safe_agreement.try_resolve sa with
        | Some v -> Runtime.Op.decide v
        | None -> resolve ()
      in
      resolve ()
    in
    Runtime.create
      {
        Runtime.n_c = 2;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun _ () -> ())
  in
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b -> Value.equal a b
    | _ -> true
  in
  let pids = [ Pid.c 0; Pid.c 1 ] in
  let engine label run =
    let verdict, st = run () in
    let ok = match verdict with Exhaustive.Ok _ -> true | _ -> false in
    if not ok then incr failures;
    Obs.Bench_record.row record
      ~labels:[ ("section", "checker"); ("engine", label) ]
      [
        ( "schedules",
          match verdict with
          | Exhaustive.Ok n -> Obs.Json.Int n
          | Exhaustive.Counterexample _ -> Obs.Json.Null );
        ("steps_executed", Obs.Json.Int st.Exhaustive.steps_executed);
        ("memo_hits", Obs.Json.Int st.Exhaustive.memo_hits);
      ];
    Fmt.pr "%-16s %-28s %d steps@." "checker" label
      st.Exhaustive.steps_executed
  in
  engine "replay-baseline" (fun () ->
      Exhaustive.run_replay ~build ~pids ~depth:6 ~prop ());
  engine "incremental-memo" (fun () ->
      Exhaustive.run ~memo:true ~build ~pids ~depth:6 ~prop ());
  let path =
    match json with
    | Some p ->
      write_json p (Obs.Bench_record.to_json record);
      p
    | None -> Obs.Bench_record.write record
  in
  Fmt.pr "recorded %d rows -> %s@." (Obs.Bench_record.rows record) path;
  if !failures = 0 then 0 else 1

(* ------------------------------------------------------- serve / call *)

let serve socket listen workers shards queue deadline_ms max_frame events =
  (* --listen supersedes --socket; --socket PATH keeps meaning what it
     always meant (a bare path parses as a Unix socket address) *)
  match Svc.Addr.of_string (Option.value listen ~default:socket) with
  | Error msg ->
    Fmt.epr "wfa serve: %s@." msg;
    2
  | Ok addr ->
    let cfg =
      {
        Svc.Server.listen = addr;
        workers;
        shards;
        queue_bound = queue;
        default_deadline_ms = deadline_ms;
        max_frame;
        max_reply = Svc.Frame.max_wire_len;
      }
    in
    let sink = if events then Some (Obs.Sink.stdout ()) else None in
    Svc.Server.run ?sink
      ~on_listen:(fun bound ->
        (* the bound address, not the configured one: tcp::0 resolves to
           the kernel-chosen port here, and scripts parse this line *)
        Fmt.pr "wfa serve: listening on %s (workers %d, shards %d, queue %d)@."
          (Svc.Addr.to_string bound) workers shards queue)
      cfg;
    Fmt.pr "wfa serve: drained and stopped@.";
    0

(* --pipeline N: write all N copies of the request before reading any
   response, then collect N responses matched by id (completion order, not
   send order — the point of pipelining). N = 1 is the plain round-trip. *)
let call socket verb params deadline_ms pipeline retry codec =
  match Obs.Json.of_string params with
  | Error msg ->
    Fmt.epr "wfa call: invalid --params JSON: %s@." msg;
    2
  | Ok params when pipeline < 1 ->
    ignore params;
    Fmt.epr "wfa call: --pipeline must be >= 1@.";
    2
  | Ok params -> (
    match Svc.Client.connect ~retries:retry ~codec socket with
    | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "wfa call: cannot connect to %s: %s@." socket
        (Unix.error_message e);
      2
    | exception Invalid_argument msg ->
      Fmt.epr "wfa call: %s@." msg;
      2
    | client when pipeline = 1 ->
      let r = Svc.Client.call ?deadline_ms ~params client verb in
      Svc.Client.close client;
      (match r with
      | Ok result ->
        Fmt.pr "%s@?" (Obs.Json.to_string_pretty result);
        0
      | Error (Svc.Client.Server (code, msg)) ->
        Fmt.epr "wfa call: %s: %s@." (Svc.Protocol.err_code_string code) msg;
        1
      | Error (Svc.Client.Transport _ as e) ->
        Fmt.epr "wfa call: %s@." (Svc.Client.error_string e);
        2)
    | client -> (
      let sent = ref [] in
      let send_error = ref None in
      (try
         for _ = 1 to pipeline do
           match Svc.Client.send ?deadline_ms ~params client verb with
           | Ok id -> sent := id :: !sent
           | Error e ->
             send_error := Some e;
             raise Exit
         done
       with Exit -> ());
      match !send_error with
      | Some e ->
        Svc.Client.close client;
        Fmt.epr "wfa call: %s@." (Svc.Client.error_string e);
        2
      | None ->
        let ok = ref 0 and failed = ref 0 and transport = ref None in
        (try
           for _ = 1 to pipeline do
             match Svc.Client.recv client with
             | Ok (id, Ok _) ->
               incr ok;
               ignore id
             | Ok (id, Error e) ->
               incr failed;
               Fmt.epr "wfa call: id %d: %s@." id (Svc.Client.error_string e)
             | Error e ->
               transport := Some e;
               raise Exit
           done
         with Exit -> ());
        Svc.Client.close client;
        (match !transport with
        | Some e ->
          Fmt.epr "wfa call: %s@." (Svc.Client.error_string e);
          2
        | None ->
          Fmt.pr "pipeline %d: ok %d, failed %d@." pipeline !ok !failed;
          if !failed = 0 then 0 else 1)))

(* ------------------------------------------------------------ campaign *)

(* Expand a campaign file into its scenario matrix and run every cell,
   either against a live server (the scenarios travel as scenario-verb
   requests on one pipelined connection) or in-process. The summary table
   always prints; --json additionally writes the wfa.bench record the
   baseline gate consumes. Exit 0 iff every scenario passed. *)
let campaign file socket local window deadline_ms json list_only =
  match Scenario.Campaign.load file with
  | Error msg ->
    Fmt.epr "wfa campaign: %s@." msg;
    2
  | Ok c -> (
    match Scenario.Campaign.expand c with
    | Error msg ->
      Fmt.epr "wfa campaign: %s@." msg;
      2
    | Ok specs ->
      if list_only then begin
        List.iter
          (fun sp ->
            Fmt.pr "%-60s %s  %s@." sp.Scenario.Spec.sp_name
              (Scenario.Spec.verb sp)
              (Scenario.Spec.expect_string sp.Scenario.Spec.sp_expect))
          specs;
        Fmt.pr "%d scenarios@." (List.length specs);
        0
      end
      else begin
        let name = c.Scenario.Campaign.c_name in
        let summary =
          if local then
            Ok
              (Svc.Campaign.run_local ?default_deadline_ms:deadline_ms ~name
                 specs)
          else
            match Svc.Client.connect ~retries:3 socket with
            | exception Unix.Unix_error (e, _, _) ->
              Error
                (Fmt.str "cannot connect to %s: %s" socket
                   (Unix.error_message e))
            | exception Invalid_argument msg -> Error msg
            | client ->
              let s =
                Svc.Campaign.run_client ~window
                  ?default_deadline_ms:deadline_ms ~name ~client specs
              in
              Svc.Client.close client;
              Ok s
        in
        match summary with
        | Error msg ->
          Fmt.epr "wfa campaign: %s@." msg;
          2
        | Ok s ->
          Fmt.pr "%a" Svc.Campaign.pp_summary s;
          Option.iter
            (fun path ->
              write_json path
                (Obs.Bench_record.to_json (Svc.Campaign.record s)))
            json;
          if Svc.Campaign.ok s then 0 else 1
      end)

(* ---------------------------------------------------------------- main *)

let solve_cmd =
  let doc = "Run one EFD task-solving run and report the verdict." in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(
      const solve $ scenario_file_arg "solve" $ task_arg $ fd_arg
      $ policy_arg $ n_arg $ k_arg $ j_arg $ l_arg $ seed_arg $ budget_arg
      $ crashes_arg $ json_arg)

let classify_cmd =
  let doc = "Measure the task hierarchy (Theorem 10)." in
  Cmd.v
    (Cmd.info "classify" ~doc)
    Term.(const classify $ n_arg $ seeds_arg)

let witness_kind_arg =
  Arg.(
    value
    & opt (enum
             [ ("strong-renaming", `Strong_renaming);
               ("consensus-reduction", `Consensus_reduction) ])
        `Strong_renaming
    & info [ "kind" ] ~docv:"KIND" ~doc:"strong-renaming | consensus-reduction.")

let witness_cmd =
  let doc = "Search for an impossibility witness (Lemma 11 / Theorem 12)." in
  Cmd.v
    (Cmd.info "witness" ~doc)
    Term.(const witness $ witness_kind_arg $ n_arg $ j_arg
          $ Arg.(value & opt int 500 & info [ "seeds" ] ~docv:"COUNT" ~doc:"Seeds to try.")
          $ Arg.(value & flag & info [ "explain" ] ~doc:"Replay the witness with tracing and print the violating interleaving."))

let fuzz_cmd =
  let doc =
    "Domain-parallel randomized fuzzing for an impossibility witness, with \
     optional delta-debugging shrinking."
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz $ scenario_file_arg "fuzz"
      $ Arg.(
          value
          & opt (enum (List.map (fun k -> (k, k)) Scenario.Build.fuzz_kinds))
              "strong-renaming"
          & info [ "kind" ] ~docv:"KIND"
              ~doc:
                (Fmt.str "%s." (String.concat " | " Scenario.Build.fuzz_kinds)))
      $ n_arg $ j_arg $ seed_arg
      $ Arg.(value & opt int 2_000
             & info [ "budget" ] ~docv:"TRIALS" ~doc:"Fuzz trials to run.")
      $ Arg.(value & opt int 1
             & info [ "domains" ] ~docv:"D"
                 ~doc:"Worker domains (the witness is identical for any D).")
      $ Arg.(value & flag
             & info [ "shrink" ]
                 ~doc:"Minimize the witness (crashes, schedule, inputs) by \
                       delta debugging.")
      $ Arg.(value & flag
             & info [ "explain" ]
                 ~doc:"Replay the (shrunk) witness with tracing and print \
                       the violating interleaving.")
      $ json_arg)

let extract_cmd =
  let doc = "Extract anti-Omega-k from a detector solving k-set agreement (Theorem 8)." in
  Cmd.v
    (Cmd.info "extract" ~doc)
    Term.(const extract $ n_arg $ k_arg $ seed_arg $ crashes_arg)

let emulate_cmd =
  let doc = "Emulate Omega from an eventually-strong detector (distributed reduction)." in
  Cmd.v
    (Cmd.info "emulate" ~doc)
    Term.(const emulate $ n_arg $ seed_arg $ crashes_arg
          $ Arg.(value & opt int 30_000 & info [ "budget" ] ~docv:"STEPS" ~doc:"Run length."))

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"DIR"
        ~doc:
          "Journal progress to $(docv) (created if missing): a crash or \
           SIGKILL at any point leaves a consistent generation that wfa \
           resume continues from, with verdict and credited count \
           identical to an uninterrupted run.")

let checkpoint_interval_arg =
  Arg.(
    value
    & opt float Ckpt.Local.default_interval_s
    & info [ "checkpoint-interval-s" ] ~docv:"S"
        ~doc:"Seconds between journal generations (a generation is also \
              written before the first job and at completion).")

let modelcheck_cmd =
  let doc =
    "Exhaustively model-check a scenario over all schedules, locally or \
     fanned out over a worker fleet."
  in
  Cmd.v
    (Cmd.info "modelcheck" ~doc)
    Term.(const modelcheck $ scenario_file_arg "modelcheck"
          $ Arg.(value & opt int 10 & info [ "depth" ] ~docv:"DEPTH" ~doc:"Schedule depth.")
          $ Arg.(value & opt int 1 & info [ "n-s" ] ~docv:"N" ~doc:"Number of (idle) S-processes in the schedule.")
          $ Arg.(value & flag & info [ "reduce" ] ~doc:"Enable sleep-set partial-order reduction and S-process symmetry collapsing.")
          $ Arg.(value & opt string "safe-agreement"
                 & info [ "scenario" ] ~docv:"NAME"
                     ~doc:"Scenario to check: safe-agreement | race-false \
                           (a seeded violation, for testing the \
                           counterexample path).")
          $ Arg.(value & opt (list string) []
                 & info [ "workers" ] ~docv:"ADDR,..."
                     ~doc:"Distribute over these wfa serve workers \
                           (tcp:HOST:PORT or unix:PATH, comma-separated). \
                           Empty = run locally.")
          $ Arg.(value & opt (some int) None
                 & info [ "split-depth" ] ~docv:"D"
                     ~doc:"Frontier depth for distribution (default: \
                           min 3 (depth-1)).")
          $ checkpoint_dir_arg
          $ checkpoint_interval_arg
          $ json_arg)

let resume_cmd =
  let doc =
    "Resume a checkpointed model-check from its journal directory; the \
     record's config (scenario, depth, reduction, split depth) wins, only \
     the fleet is the caller's choice."
  in
  Cmd.v
    (Cmd.info "resume" ~doc)
    Term.(
      const resume
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"DIR"
                 ~doc:"Checkpoint directory written by modelcheck \
                       --checkpoint.")
      $ Arg.(value & opt (list string) []
             & info [ "workers" ] ~docv:"ADDR,..."
                 ~doc:"Redispatch unfinished subtrees over these wfa serve \
                       workers (same fleet or a different one — workers \
                       are stateless). Empty = finish in-process.")
      $ checkpoint_interval_arg
      $ json_arg)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/wfa.sock"
    & info [ "socket" ] ~docv:"ADDR"
        ~doc:"Server address: a Unix-domain socket path, unix:PATH, or \
              tcp:HOST:PORT.")

let serve_cmd =
  let doc =
    "Run the concurrent job server: solve/modelcheck/subtree/fuzz over a \
     Unix-domain or TCP socket with worker pools, backpressure and \
     deadlines."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve $ socket_arg
      $ Arg.(value & opt (some string) None
             & info [ "listen" ] ~docv:"ADDR"
                 ~doc:"Listen address: unix:PATH or tcp:HOST:PORT \
                       (tcp::0 = all interfaces, kernel-chosen port, \
                       printed on startup). Overrides --socket.")
      $ Arg.(value & opt int 2
             & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
      $ Arg.(value & opt int 2
             & info [ "shards" ] ~docv:"N"
                 ~doc:"I/O shard event loops; each owns a slice of the \
                       connections (poll-based, so thousands per shard).")
      $ Arg.(value & opt int 64
             & info [ "queue" ] ~docv:"N"
                 ~doc:"Queue bound; requests beyond it are rejected with \
                       overloaded.")
      $ Arg.(value & opt (some int) None
             & info [ "deadline-ms" ] ~docv:"MS"
                 ~doc:"Default per-request deadline (requests may carry \
                       their own).")
      $ Arg.(value & opt int Svc.Frame.default_max_len
             & info [ "max-frame" ] ~docv:"BYTES"
                 ~doc:"Largest accepted request frame.")
      $ Arg.(value & flag
             & info [ "events" ]
                 ~doc:"Emit svc.* events as JSON lines on stdout."))

let verb_conv : Svc.Protocol.verb Arg.conv =
  let parse s =
    match Svc.Protocol.verb_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Fmt.str "unknown verb %S" s))
  in
  Arg.conv (parse, fun ppf v -> Fmt.string ppf (Svc.Protocol.verb_string v))

let call_cmd =
  let doc = "Send one request to a running wfa serve and print the result." in
  Cmd.v
    (Cmd.info "call" ~doc)
    Term.(
      const call $ socket_arg
      $ Arg.(value & pos 0 verb_conv Svc.Protocol.Ping
             & info [] ~docv:"VERB"
                 ~doc:"ping | stats | metrics | solve | modelcheck | \
                       subtree | fuzz | scenario | shutdown. The scenario \
                       verb takes a full scenario-file object as --params \
                       and is validated server-side.")
      $ Arg.(value & opt string "{}"
             & info [ "params" ] ~docv:"JSON" ~doc:"Request parameters.")
      $ Arg.(value & opt (some int) None
             & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Request deadline.")
      $ Arg.(value & opt int 1
             & info [ "pipeline" ] ~docv:"N"
                 ~doc:"Send $(docv) copies of the request before reading \
                       any response (responses are matched by id and may \
                       complete out of order); prints an ok/failed summary.")
      $ Arg.(value & opt int 0
             & info [ "retry" ] ~docv:"N"
                 ~doc:"Retry a refused connection up to $(docv) times with \
                       exponential backoff.")
      $ Arg.(value
             & opt (enum
                      [ ("json", Svc.Protocol.Codec.Json);
                        ("binary", Svc.Protocol.Codec.Binary) ])
                 Svc.Protocol.Codec.Json
             & info [ "codec" ] ~docv:"CODEC"
                 ~doc:"Wire codec to offer: json (default, the debug path) \
                       or binary (negotiated via hello; downgrades to json \
                       against a server without binary support). The \
                       printed result is identical either way."))

let bench_cmd =
  let doc =
    "Run the bench smoke suite and record it as a wfa.bench JSON file."
  in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const bench $ json_arg)

let campaign_cmd =
  let doc =
    "Expand a campaign file into its scenario matrix and run every \
     scenario, comparing each result against its declared expectation."
  in
  Cmd.v
    (Cmd.info "campaign" ~doc)
    Term.(
      const campaign
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"FILE" ~doc:"Campaign file (see bench/campaigns/).")
      $ socket_arg
      $ Arg.(
          value & flag
          & info [ "local" ]
              ~doc:
                "Run in-process instead of against a server (same engine \
                 code path, sequential).")
      $ Arg.(
          value & opt int 16
          & info [ "window" ] ~docv:"N"
              ~doc:"Pipelined requests in flight per connection.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "deadline-ms" ] ~docv:"MS"
              ~doc:
                "Default per-scenario deadline (scenarios may carry their \
                 own).")
      $ json_arg
      $ Arg.(
          value & flag
          & info [ "list" ]
              ~doc:"Print the expanded scenario names and exit."))

let () =
  let doc = "Wait-Freedom with Advice (PODC 2012) — executable model" in
  let info = Cmd.info "wfa" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ solve_cmd; classify_cmd; witness_cmd; fuzz_cmd; extract_cmd;
            emulate_cmd; modelcheck_cmd; resume_cmd; serve_cmd; call_cmd;
            bench_cmd;
            campaign_cmd ]))
